package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxflowPackages are the layers whose blocking paths must thread the
// caller's cancellable context (PR-2 invariant: cancellation propagates
// engine → pipeline → rdd → server with no gaps a stuck query can hide in;
// the distributed layers — shuffle, cluster, sjworker — extend the chain
// across the exchange RPCs).
var ctxflowPackages = map[string]bool{
	"engine":   true,
	"pipeline": true,
	"rdd":      true,
	"server":   true,
	"shuffle":  true,
	"cluster":  true,
	"sjworker": true,
}

// CtxFlowAnalyzer flags context-propagation breaks in the execution layers:
// a function that receives a context but replaces it with
// context.Background/TODO, a function that starts a fresh background
// context to feed a context-threading callee, and — interprocedurally — a
// function whose context parameter is never consulted even though its
// summary says it blocks (so cancellation can never reach the block).
func CtxFlowAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc: "blocking and looping paths in engine, pipeline, rdd and server " +
			"must thread a cancellable context: no dropped context parameters on " +
			"blocking functions (found via function summaries), no " +
			"context.Background/TODO substituted for the caller's context.",
		AppliesTo: func(pkg *Package) bool {
			return ctxflowPackages[pathBase(pkg.Path)] || ctxflowPackages[pkg.Name]
		},
		Run: runCtxFlow,
	}
}

func runCtxFlow(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		// Tests may legitimately root fresh contexts and block on fixtures.
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFlowFn(pass, fd)
		}
	}
}

func checkCtxFlowFn(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	obj, _ := info.Defs[fd.Name].(*types.Func)
	fi := pass.IP.FuncOf(obj)
	if fi == nil {
		return
	}
	s := &fi.Summary

	// Interprocedural: the context parameter is dead weight on a function
	// whose summary (possibly through callees) says it blocks — the caller
	// believes cancellation works, but nothing consults the context.
	if s.CtxParam != nil && !s.UsesCtx && s.Blocks {
		pass.Reportf(fd.Name.Pos(),
			"%s receives a context but never consults it while it blocks (%s) — cancellation cannot reach the blocking path; thread the context into it",
			fd.Name.Name, s.BlockDetail)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// A fresh root context created where a caller context exists.
		if name, ok := backgroundCtxCall(info, call); ok && s.CtxParam != nil {
			pass.Reportf(call.Pos(),
				"calls context.%s inside a function that already receives a context — the caller's cancellation is dropped here; pass %s through instead",
				name, s.CtxParam.Name())
			return true
		}
		// A fresh root context fed straight into a context-threading module
		// callee from a function with no context of its own: the blocking
		// work underneath becomes uncancellable. (When the function has a
		// context parameter the Background call itself was flagged above.)
		if s.CtxParam != nil {
			return true
		}
		for _, arg := range call.Args {
			argCall, ok := ast.Unparen(arg).(*ast.CallExpr)
			if !ok {
				continue
			}
			name, ok := backgroundCtxCall(info, argCall)
			if !ok {
				continue
			}
			callee := pass.IP.StaticCallee(info, call)
			if callee == nil || callee.Summary.CtxParam == nil {
				continue
			}
			pass.Reportf(argCall.Pos(),
				"passes context.%s to %s, which threads a context through its work — plumb a cancellable context from the caller instead of rooting a fresh one",
				name, callee.Obj.Name())
		}
		return true
	})
}

// backgroundCtxCall recognizes context.Background() and context.TODO().
func backgroundCtxCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if name != "Background" && name != "TODO" {
		return "", false
	}
	obj, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if !ok || obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return "", false
	}
	return name, true
}
