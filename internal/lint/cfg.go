// Control-flow graphs for flow-sensitive analysis. The AST/summary-based
// analyzers (PRs 1/4/6) are path-blind: they can see that a function *may*
// close a connection but not that it does so *on every path*, and they can
// see lock acquisitions but not the order two locks are held in. This file
// adds the missing layer: a purely syntactic per-function CFG over go/ast —
// basic blocks linked by control edges, with if/for/range/switch/select,
// labeled break/continue, goto, panic exits and defer modeled — plus a
// generic forward-dataflow walker, exposed to analyzers through Pass.Flow.
//
// Design choices, in the order they matter to the analyzers built on top:
//
//   - Deferred calls run at function exit whatever path got there, so defer
//     statements are recorded where they execute AND their call expressions
//     are replayed (in LIFO order) as effects of the single synthetic Exit
//     block. A flow that reaches Exit therefore sees `defer c.Close()` as a
//     release even when the defer sits before an early return. This is
//     conservative in the sound direction for leak checking: a defer
//     registered only on some branch is treated as always running, which can
//     hide a leak but never invents one.
//   - Condition expressions live in the Nodes list of the block that
//     evaluates them, and that block records them in Cond with the branch
//     convention Succs[0]=true / Succs[1]=false. Analyzers use this for
//     cheap path-sensitivity on `v != nil` / `err == nil` guards.
//   - panic(...) is an edge straight to Exit (deferred calls still run on a
//     panicking path, which the Exit-effect model captures for free).
//     recover() needs no modeling beyond that: it only changes what happens
//     in the *caller*, not which blocks of this function execute.
//   - Unreachable code after return/break/goto lands in successor-less,
//     predecessor-less blocks; empty ones are pruned, non-empty ones are
//     kept so dumps make dead statements visible.
package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"sort"
	"strings"
)

// Block is one basic block: a straight-line run of statements (and the
// condition expressions evaluated at its end) with control edges out.
type Block struct {
	Index int
	// Kind names the construct that created the block (entry, exit,
	// if.then, for.body, select.case, label.retry, ...) for dumps and for
	// human-readable path traces.
	Kind string
	// Pos anchors the block in the source (the construct's position).
	Pos token.Pos
	// Nodes are the statements and condition expressions executed in this
	// block, in order. Exit holds the deferred calls in LIFO order.
	Nodes []ast.Node
	// Cond, when non-nil, is the branch condition: Succs[0] is taken when
	// it is true, Succs[1] when it is false.
	Cond  ast.Expr
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body. Entry and Exit are
// synthetic; every return, panic and fall-off-the-end reaches Exit.
type CFG struct {
	Name   string
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// Defers lists deferred calls in registration order; Exit.Nodes holds
	// the same calls reversed (execution order).
	Defers []*ast.CallExpr
}

type loopTarget struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select targets (break only)
}

type cfgBuilder struct {
	cfg      *CFG
	cur      *Block
	targets  []loopTarget
	labels   map[string]*Block
	curLabel string
}

// BuildCFG constructs the CFG for a function body. It is purely syntactic:
// no type information is consulted, so it works identically on fixture
// modules and the real tree.
func BuildCFG(name string, body *ast.BlockStmt) *CFG {
	c := &CFG{Name: name}
	b := &cfgBuilder{cfg: c, labels: map[string]*Block{}}
	c.Entry = b.newBlock("entry", body.Pos())
	c.Exit = &Block{Kind: "exit", Pos: body.End()}
	b.cur = c.Entry
	b.stmtList(body.List)
	b.edge(b.cur, c.Exit)
	// The synthetic exit goes last so dumps read top-down.
	c.Exit.Index = len(c.Blocks)
	c.Blocks = append(c.Blocks, c.Exit)
	// Deferred calls execute on every path out, in LIFO order.
	for i := len(c.Defers) - 1; i >= 0; i-- {
		c.Exit.Nodes = append(c.Exit.Nodes, c.Defers[i])
	}
	c.prune()
	return c
}

func (b *cfgBuilder) newBlock(kind string, pos token.Pos) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind, Pos: pos}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// deadEnd parks the builder on a fresh unreachable block after a terminating
// statement (return, break, goto, panic); statements that follow are
// collected there so dumps show them.
func (b *cfgBuilder) deadEnd() {
	b.cur = b.newBlock("unreachable", token.NoPos)
}

func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
	if b.cur.Pos == token.NoPos {
		b.cur.Pos = n.Pos()
	}
}

// labelBlock returns (creating on first reference, so forward gotos work)
// the block a label names.
func (b *cfgBuilder) labelBlock(name string, pos token.Pos) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label."+name, pos)
	b.labels[name] = blk
	return blk
}

// takeLabel consumes the label attached to the statement being built (set by
// the LabeledStmt case for the loop/switch/select that follows it).
func (b *cfgBuilder) takeLabel() string {
	l := b.curLabel
	b.curLabel = ""
	return l
}

func (b *cfgBuilder) findTarget(label string, wantContinue bool) *Block {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := b.targets[i]
		if label != "" && t.label != label {
			continue
		}
		if wantContinue {
			if t.continueTo == nil {
				continue // switch/select: continue skips to the loop outside
			}
			return t.continueTo
		}
		return t.breakTo
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name, s.Pos())
		b.edge(b.cur, lb)
		b.cur = lb
		b.curLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.curLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.deadEnd()

	case *ast.BranchStmt:
		switch s.Tok {
		case token.GOTO:
			b.add(s)
			b.edge(b.cur, b.labelBlock(s.Label.Name, s.Pos()))
			b.deadEnd()
		case token.BREAK, token.CONTINUE:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			b.add(s)
			if t := b.findTarget(label, s.Tok == token.CONTINUE); t != nil {
				b.edge(b.cur, t)
			}
			b.deadEnd()
		}
		// fallthrough is consumed by the switch walker.

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s.Call)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isPanicCall(call) {
			b.edge(b.cur, b.cfg.Exit)
			b.deadEnd()
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		condBlk.Cond = s.Cond
		then := b.newBlock("if.then", s.Body.Pos())
		b.edge(condBlk, then)
		b.cur = then
		b.stmtList(s.Body.List)
		thenEnd := b.cur
		var elseEnd *Block
		if s.Else != nil {
			elseBlk := b.newBlock("if.else", s.Else.Pos())
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			elseEnd = b.cur
		}
		join := b.newBlock("if.join", s.End())
		if s.Else == nil {
			b.edge(condBlk, join) // false edge
		}
		b.edge(thenEnd, join)
		if elseEnd != nil {
			b.edge(elseEnd, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock("for.head", s.Pos())
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			head.Cond = s.Cond
		}
		body := b.newBlock("for.body", s.Body.Pos())
		b.edge(head, body)
		join := b.newBlock("for.join", s.End())
		if s.Cond != nil {
			b.edge(head, join) // false edge
		}
		continueTo := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post", s.Post.Pos())
			continueTo = post
		}
		b.targets = append(b.targets, loopTarget{label: label, breakTo: join, continueTo: continueTo})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, continueTo)
		b.targets = b.targets[:len(b.targets)-1]
		if post != nil {
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
		}
		b.cur = join

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head", s.Pos())
		b.edge(b.cur, head)
		head.Nodes = append(head.Nodes, s)
		body := b.newBlock("range.body", s.Body.Pos())
		b.edge(head, body)
		join := b.newBlock("range.join", s.End())
		b.edge(head, join)
		b.targets = append(b.targets, loopTarget{label: label, breakTo: join, continueTo: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, head)
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = join

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(label, s.Body, "case", true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(label, s.Body, "typecase", false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		join := b.newBlock("select.join", s.End())
		b.targets = append(b.targets, loopTarget{label: label, breakTo: join})
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			kind := "select.case"
			if comm.Comm == nil {
				kind = "select.default"
			}
			blk := b.newBlock(kind, comm.Pos())
			b.edge(head, blk)
			b.cur = blk
			if comm.Comm != nil {
				b.add(comm.Comm)
			}
			b.stmtList(comm.Body)
			b.edge(b.cur, join)
		}
		b.targets = b.targets[:len(b.targets)-1]
		if len(s.Body.List) == 0 {
			// select{} blocks forever: no way out.
			b.deadEnd()
			return
		}
		b.cur = join

	default:
		// Assignments, declarations, go statements, sends, inc/dec,
		// empty statements: straight-line.
		if _, ok := s.(*ast.EmptyStmt); ok {
			return
		}
		b.add(s)
	}
}

// switchBody builds the clause blocks of a switch or type switch.
// allowFallthrough distinguishes expression switches (fallthrough legal)
// from type switches.
func (b *cfgBuilder) switchBody(label string, body *ast.BlockStmt, kind string, allowFallthrough bool) {
	head := b.cur
	join := b.newBlock(kind+".join", body.End())
	b.targets = append(b.targets, loopTarget{label: label, breakTo: join})
	var blocks []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		k := kind
		if cc.List == nil {
			k = kind + ".default"
			hasDefault = true
		}
		blk := b.newBlock(k, cc.Pos())
		b.edge(head, blk)
		blocks = append(blocks, blk)
		clauses = append(clauses, cc)
	}
	if !hasDefault {
		b.edge(head, join)
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		stmts := cc.Body
		fellThrough := false
		if allowFallthrough && len(stmts) > 0 {
			if br, ok := stmts[len(stmts)-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				stmts = stmts[:len(stmts)-1]
				fellThrough = true
			}
		}
		b.stmtList(stmts)
		if fellThrough && i+1 < len(blocks) {
			b.edge(b.cur, blocks[i+1])
		} else {
			b.edge(b.cur, join)
		}
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = join
}

func isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// prune drops empty unreachable blocks (builder artifacts after returns and
// breaks) and renumbers the survivors. Non-empty unreachable blocks — real
// dead code — are kept.
func (c *CFG) prune() {
	for {
		removed := false
		var keep []*Block
		for _, blk := range c.Blocks {
			if blk != c.Entry && blk != c.Exit && len(blk.Preds) == 0 && len(blk.Nodes) == 0 {
				for _, s := range blk.Succs {
					s.Preds = removeBlock(s.Preds, blk)
				}
				removed = true
				continue
			}
			keep = append(keep, blk)
		}
		c.Blocks = keep
		if !removed {
			break
		}
	}
	for i, blk := range c.Blocks {
		blk.Index = i
	}
}

func removeBlock(list []*Block, b *Block) []*Block {
	out := list[:0]
	for _, x := range list {
		if x != b {
			out = append(out, x)
		}
	}
	return out
}

// Dump renders the CFG in a stable text form for golden tests: one line per
// block with its kind, abbreviated statements, and successor indices.
func (c *CFG) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s\n", c.Name)
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "  b%d %s", blk.Index, blk.Kind)
		if len(blk.Nodes) > 0 {
			parts := make([]string, len(blk.Nodes))
			for i, n := range blk.Nodes {
				parts[i] = renderNode(n)
			}
			fmt.Fprintf(&sb, " [%s]", strings.Join(parts, "; "))
		}
		if len(blk.Succs) > 0 {
			idx := make([]string, len(blk.Succs))
			for i, s := range blk.Succs {
				idx[i] = fmt.Sprintf("b%d", s.Index)
			}
			fmt.Fprintf(&sb, " -> %s", strings.Join(idx, " "))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// renderNode prints an AST node on one line, truncated; the fixed FileSet
// keeps output independent of real source positions.
func renderNode(n ast.Node) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, token.NewFileSet(), n)
	s := strings.Join(strings.Fields(buf.String()), " ")
	const max = 48
	if len(s) > max {
		s = s[:max] + "…"
	}
	return s
}

// ---- Forward dataflow ----

// FlowSpec drives RunForward: a forward may-analysis over a CFG. States are
// analyzer-defined; Merge joins states at control joins, Transfer pushes a
// state through a block's nodes, and the optional Edge hook refines the
// state along a specific branch (this is where `v != nil` guards become
// path-sensitivity).
type FlowSpec[S any] struct {
	Init     S
	Merge    func(a, b S) S
	Equal    func(a, b S) bool
	Transfer func(blk *Block, in S) S
	Edge     func(from, to *Block, out S) S
}

// RunForward iterates the spec to a fixpoint and returns the state at entry
// to and exit from each reached block. Unreachable blocks are absent from
// both maps.
func RunForward[S any](c *CFG, spec FlowSpec[S]) (in, out map[*Block]S) {
	in = map[*Block]S{c.Entry: spec.Init}
	out = map[*Block]S{}
	// Round-robin over blocks in index order (an approximation of reverse
	// post-order given how the builder numbers blocks) until stable.
	for {
		changed := false
		for _, blk := range c.Blocks {
			st, reached := in[blk]
			if blk != c.Entry {
				first := true
				for _, p := range blk.Preds {
					po, ok := out[p]
					if !ok {
						continue
					}
					if spec.Edge != nil {
						po = spec.Edge(p, blk, po)
					}
					if first {
						st, first = po, false
					} else {
						st = spec.Merge(st, po)
					}
				}
				if first {
					continue // no reached predecessor yet
				}
				if !reached || !spec.Equal(in[blk], st) {
					in[blk] = st
					changed = true
				}
			}
			next := spec.Transfer(blk, in[blk])
			if prev, ok := out[blk]; !ok || !spec.Equal(prev, next) {
				out[blk] = next
				changed = true
			}
		}
		if !changed {
			return in, out
		}
	}
}

// ---- Pass-level cache ----

// Flow is the per-run flow-sensitive layer handed to analyzers via
// Pass.Flow: a CFG cache (functions are analyzed by several analyzers; the
// graph is built once) plus the lazily built module-wide lock-order graph.
type Flow struct {
	mod  *Module
	ip   *Interproc
	cfgs map[*ast.BlockStmt]*CFG

	lockOnce  bool
	lockGraph *lockOrderGraph
}

// NewFlow creates the flow layer for one module run.
func NewFlow(mod *Module, ip *Interproc) *Flow {
	return &Flow{mod: mod, ip: ip, cfgs: map[*ast.BlockStmt]*CFG{}}
}

// CFG returns the (cached) control-flow graph for a function body.
func (f *Flow) CFG(name string, body *ast.BlockStmt) *CFG {
	if c, ok := f.cfgs[body]; ok {
		return c
	}
	c := BuildCFG(name, body)
	f.cfgs[body] = c
	return c
}

// funcCFGs walks a file and yields every function unit — declarations and
// literals — with a stable display name, in source order.
type funcUnit struct {
	Name string
	Decl *ast.FuncDecl // nil for literals
	Body *ast.BlockStmt
}

func fileFuncs(file *ast.File) []funcUnit {
	var units []funcUnit
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		name := fd.Name.Name
		if fd.Recv != nil && len(fd.Recv.List) > 0 {
			name = recvTypeName(fd.Recv.List[0].Type) + "." + name
		}
		units = append(units, funcUnit{Name: name, Decl: fd, Body: fd.Body})
		litIndex := 0
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				litIndex++
				units = append(units, funcUnit{
					Name: fmt.Sprintf("%s.func%d", name, litIndex),
					Body: lit.Body,
				})
			}
			return true
		})
	}
	return units
}

func recvTypeName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return "?"
}

// sortedBlocksByPos is a helper for deterministic reporting when analyzers
// collect per-block facts.
func sortedBlocksByPos(fset *token.FileSet, blocks []*Block) []*Block {
	out := append([]*Block(nil), blocks...)
	sort.SliceStable(out, func(i, j int) bool {
		return fset.Position(out[i].Pos).Offset < fset.Position(out[j].Pos).Offset
	})
	return out
}
