// Package catalog loads directories of annotated datasets — the shared
// entry point for the CLI (cmd/scrubjay) and the serving daemon
// (cmd/sjserved). A catalog directory holds data files in any wrapped
// format (§5.2 of the paper): *.jsonl, *.csv, *.bin with schema sidecars,
// plus kv-store tables when .log segments are present.
package catalog

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"scrubjay/internal/kvstore"
	"scrubjay/internal/pipeline"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/stats"
	"scrubjay/internal/wrappers"
)

// Load reads every *.jsonl, *.csv, and *.bin file (with schema sidecars
// where applicable) in dir, plus every table of any kv-store .log files
// present; dataset names are file basenames / table names.
func Load(ctx *rdd.Context, dir string) (pipeline.Catalog, map[string]semantics.Schema, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	cat := pipeline.Catalog{}
	schemas := map[string]semantics.Schema{}
	add := func(name string, src wrappers.Source) error {
		ds, err := wrappers.Read(ctx, src)
		if err != nil {
			return fmt.Errorf("loading %s: %w", name, err)
		}
		cat[name] = ds
		schemas[name] = ds.Schema()
		return nil
	}
	hasKV := false
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		var format string
		switch {
		case strings.HasSuffix(name, ".jsonl"):
			format = "jsonl"
		case strings.HasSuffix(name, ".csv"):
			format = "csv"
		case strings.HasSuffix(name, ".bin"):
			format = "bin"
		case strings.HasSuffix(name, ".log"):
			hasKV = true
			continue
		default:
			continue
		}
		base := name[:len(name)-len(filepath.Ext(name))]
		if err := add(base, wrappers.Source{Format: format, Path: filepath.Join(dir, name), Name: base}); err != nil {
			return nil, nil, err
		}
	}
	if hasKV {
		store, err := kvstore.Open(dir)
		if err != nil {
			return nil, nil, err
		}
		names, err := store.TableNames()
		store.Close()
		if err != nil {
			return nil, nil, err
		}
		for _, table := range names {
			if err := add(table, wrappers.Source{Format: "kv", Path: dir, Table: table, Name: table}); err != nil {
				return nil, nil, err
			}
		}
	}
	if len(cat) == 0 {
		return nil, nil, fmt.Errorf("catalog %s contains no datasets", dir)
	}
	return cat, schemas, nil
}

// Ingest profiles every catalog dataset into a statistics store: row
// cardinality plus per-column NDV and value ranges, keyed by dataset name.
// Datasets are profiled in sorted name order so the resulting store (and
// its epoch) is deterministic for a given catalog. A nil store is a no-op.
func Ingest(st *stats.Store, cat pipeline.Catalog, schemas map[string]semantics.Schema) {
	if st == nil {
		return
	}
	names := make([]string, 0, len(cat))
	for n := range cat {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		st.IngestRows(n, cat[n].Collect(), schemas[n])
	}
}
