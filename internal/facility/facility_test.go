package facility

import (
	"testing"

	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
)

func TestNewFacilityLayout(t *testing.T) {
	f := New(Config{Racks: 3, NodesPerRack: 4, Seed: 1})
	if len(f.Nodes()) != 12 {
		t.Fatalf("nodes = %d", len(f.Nodes()))
	}
	if f.Nodes()[0] != "cab00-00" || f.Nodes()[11] != "cab02-03" {
		t.Errorf("node names = %v", f.Nodes())
	}
	if f.RackOf(0) != 0 || f.RackOf(11) != 2 {
		t.Error("RackOf")
	}
	rn := f.RackNodes(1)
	if len(rn) != 4 || rn[0] != "cab01-00" {
		t.Errorf("RackNodes(1) = %v", rn)
	}
	// Degenerate configs are clamped.
	g := New(Config{})
	if len(g.Nodes()) != 1 {
		t.Errorf("clamped facility nodes = %d", len(g.Nodes()))
	}
}

func TestLayoutDataset(t *testing.T) {
	ctx := rdd.NewContext(2)
	f := New(Config{Racks: 2, NodesPerRack: 3, Seed: 1})
	ds := f.LayoutDataset(ctx, 2)
	if ds.Count() != 6 {
		t.Fatalf("layout rows = %d", ds.Count())
	}
	if err := ds.Validate(semantics.DefaultDictionary()); err != nil {
		t.Errorf("layout invalid: %v", err)
	}
	rows := ds.SortedBy("node")
	if rows[0].Get("rack").StrVal() != "rack00" || rows[5].Get("rack").StrVal() != "rack01" {
		t.Errorf("layout mapping wrong: %v", rows)
	}
}

func TestSimulateTemperaturesShape(t *testing.T) {
	ctx := rdd.NewContext(2)
	f := New(Config{Racks: 2, NodesPerRack: 6, Seed: 1})
	tc := DefaultThermalConfig()

	// Rack 0 hot (400 W/node), rack 1 idle (80 W/node).
	power := func(node string, _ int64) float64 {
		if node[:5] == "cab00" {
			return 400
		}
		return 80
	}
	ds := f.SimulateTemperatures(ctx, power, 0, 3600, tc, 2)
	// 2 racks x 3 locations x 2 aisles x 30 samples.
	if ds.Count() != int64(2*3*2*30) {
		t.Fatalf("rows = %d", ds.Count())
	}
	if err := ds.Validate(semantics.DefaultDictionary()); err != nil {
		t.Errorf("temps invalid: %v", err)
	}

	// After warm-up, rack 0's hot aisle must exceed rack 1's, and both
	// exceed their cold aisles.
	var hot0, hot1, cold0 float64
	var n0, n1, nc int
	for _, r := range ds.Collect() {
		if r.Get("time").TimeNanosVal() < 1800e9 {
			continue
		}
		temp := r.Get("temp").FloatVal()
		switch {
		case r.Get("rack").StrVal() == "rack00" && r.Get("aisle").StrVal() == "hot":
			hot0 += temp
			n0++
		case r.Get("rack").StrVal() == "rack01" && r.Get("aisle").StrVal() == "hot":
			hot1 += temp
			n1++
		case r.Get("rack").StrVal() == "rack00" && r.Get("aisle").StrVal() == "cold":
			cold0 += temp
			nc++
		}
	}
	hot0 /= float64(n0)
	hot1 /= float64(n1)
	cold0 /= float64(nc)
	if hot0 <= hot1 {
		t.Errorf("high-power rack should be hotter: %.2f vs %.2f", hot0, hot1)
	}
	if hot1 <= cold0 {
		t.Errorf("hot aisle should exceed cold aisle: %.2f vs %.2f", hot1, cold0)
	}
}

func TestSimulateTemperaturesDeterministic(t *testing.T) {
	ctx := rdd.NewContext(1)
	f := New(Config{Racks: 1, NodesPerRack: 3, Seed: 42})
	power := func(string, int64) float64 { return 200 }
	a := f.SimulateTemperatures(ctx, power, 0, 1200, DefaultThermalConfig(), 1).SortedBy("location", "aisle", "time")
	b := f.SimulateTemperatures(ctx, power, 0, 1200, DefaultThermalConfig(), 1).SortedBy("location", "aisle", "time")
	if len(a) != len(b) {
		t.Fatal("row counts differ")
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("row %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
