// Package facility simulates the HPC facility behind the paper's case
// studies (§7): a cluster of racks and compute nodes (the Cab stand-in),
// the static node/rack layout table provided by system administrators, and
// the OSIsoft-PI-style rack environment sensors — six per rack, at the top,
// middle, and bottom of the hot and cold aisles, sampled every two minutes.
//
// The thermal model is a first-order lag: each hot-aisle sensor tracks a
// target temperature of ambient plus a coefficient times the power drawn by
// the third of the rack's nodes nearest the sensor, with exponential
// approach (thermal inertia) and small deterministic noise. Cold-aisle
// sensors sit near ambient. This reproduces exactly the structure and the
// qualitative signal shapes (§7.2: ramping heat under AMG, rise-and-fall
// under phased applications) that ScrubJay's derivations consume.
package facility

import (
	"fmt"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// Locations of rack sensors.
var Locations = []string{"top", "mid", "bot"}

// Aisles of rack sensors.
var Aisles = []string{"hot", "cold"}

// Config sizes the simulated facility.
type Config struct {
	// Racks is the number of racks.
	Racks int
	// NodesPerRack is the number of compute nodes per rack.
	NodesPerRack int
	// Seed drives the deterministic noise.
	Seed int64
}

// DefaultConfig approximates one row of the Cab machine room: 20 racks of
// 64 nodes.
func DefaultConfig() Config {
	return Config{Racks: 20, NodesPerRack: 64, Seed: 1}
}

// Facility is a configured cluster.
type Facility struct {
	cfg   Config
	nodes []string // node names, rack-major
}

// New builds a facility.
func New(cfg Config) *Facility {
	if cfg.Racks < 1 {
		cfg.Racks = 1
	}
	if cfg.NodesPerRack < 1 {
		cfg.NodesPerRack = 1
	}
	f := &Facility{cfg: cfg}
	for r := 0; r < cfg.Racks; r++ {
		for n := 0; n < cfg.NodesPerRack; n++ {
			f.nodes = append(f.nodes, NodeName(r, n))
		}
	}
	return f
}

// NodeName renders the canonical node name for rack r, slot n.
func NodeName(rack, slot int) string { return fmt.Sprintf("cab%02d-%02d", rack, slot) }

// RackName renders the canonical rack name.
func RackName(rack int) string { return fmt.Sprintf("rack%02d", rack) }

// Config returns the facility's configuration.
func (f *Facility) Config() Config { return f.cfg }

// Nodes lists all node names, rack-major.
func (f *Facility) Nodes() []string { return f.nodes }

// RackNodes lists the node names in one rack.
func (f *Facility) RackNodes(rack int) []string {
	lo := rack * f.cfg.NodesPerRack
	return f.nodes[lo : lo+f.cfg.NodesPerRack]
}

// RackOf returns the rack index of a node index.
func (f *Facility) RackOf(nodeIdx int) int { return nodeIdx / f.cfg.NodesPerRack }

// LayoutSchema is the semantics of the static node/rack layout table.
func LayoutSchema() semantics.Schema {
	return semantics.NewSchema(
		"node", semantics.IDDomain("compute_node"),
		"rack", semantics.IDDomain("rack"),
	)
}

// LayoutDataset materializes the node/rack layout table — the static
// information the paper obtained from a facility administrator (§7.1).
func (f *Facility) LayoutDataset(ctx *rdd.Context, parts int) *dataset.Dataset {
	rows := make([]value.Row, len(f.nodes))
	for i, n := range f.nodes {
		rows[i] = value.NewRow(
			"node", value.Str(n),
			"rack", value.Str(RackName(f.RackOf(i))),
		)
	}
	return dataset.FromRows(ctx, "node_layout", rows, LayoutSchema(), parts)
}

// TemperatureSchema is the semantics of the rack environment sensor data.
func TemperatureSchema() semantics.Schema {
	return semantics.NewSchema(
		"rack", semantics.IDDomain("rack"),
		"location", semantics.IDDomain("rack_location"),
		"aisle", semantics.IDDomain("rack_aisle"),
		// The facility records every two minutes (§7.2).
		"time", semantics.TimeDomain().WithCadence(120),
		"temp", semantics.ValueEntry("temperature", "degrees_celsius"),
	)
}

// ThermalConfig tunes the sensor simulation.
type ThermalConfig struct {
	// PeriodSeconds is the sensor sampling interval (the paper's facility
	// records every two minutes).
	PeriodSeconds int64
	// AmbientC is the cold-aisle ambient temperature.
	AmbientC float64
	// DegreesPerKilowatt converts a rack third's power draw into its
	// steady-state hot-aisle temperature rise.
	DegreesPerKilowatt float64
	// Inertia in (0,1] is the per-sample approach rate toward the target
	// temperature; lower is more thermal mass.
	Inertia float64
	// NoiseC is the amplitude of the deterministic sensor noise.
	NoiseC float64
}

// DefaultThermalConfig matches the paper's two-minute cadence.
func DefaultThermalConfig() ThermalConfig {
	return ThermalConfig{
		PeriodSeconds:      120,
		AmbientC:           18,
		DegreesPerKilowatt: 1.2,
		Inertia:            0.35,
		NoiseC:             0.15,
	}
}

// PowerFunc reports the power draw, in watts, of a node at a Unix-seconds
// instant. Workload simulations provide it.
type PowerFunc func(node string, unixSec int64) float64

// noise is a cheap deterministic hash-noise in [-1, 1).
func noise(seed int64, a, b int64) float64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(a)*0xBF58476D1CE4E5B9 ^ uint64(b)*0x94D049BB133111EB
	x ^= x >> 31
	x *= 0xD6E8FEB86659FD93
	x ^= x >> 27
	return float64(x%2000000)/1000000 - 1
}

// SimulateTemperatures produces the rack temperature dataset over
// [startSec, endSec) driven by the given per-node power function. Sensors
// at top/mid/bot react to the power of the corresponding third of the
// rack's nodes.
func (f *Facility) SimulateTemperatures(ctx *rdd.Context, power PowerFunc, startSec, endSec int64, tc ThermalConfig, parts int) *dataset.Dataset {
	if tc.PeriodSeconds <= 0 {
		tc.PeriodSeconds = 120
	}
	var rows []value.Row
	third := (f.cfg.NodesPerRack + 2) / 3
	for r := 0; r < f.cfg.Racks; r++ {
		rackNodes := f.RackNodes(r)
		// Hot-aisle temperature state per location, warmed to ambient.
		state := map[string]float64{}
		for _, loc := range Locations {
			state[loc] = tc.AmbientC + 4
		}
		for t := startSec; t < endSec; t += tc.PeriodSeconds {
			for li, loc := range Locations {
				lo := li * third
				hi := lo + third
				if hi > len(rackNodes) {
					hi = len(rackNodes)
				}
				var kw float64
				for _, n := range rackNodes[lo:hi] {
					kw += power(n, t) / 1000
				}
				target := tc.AmbientC + 4 + tc.DegreesPerKilowatt*kw
				state[loc] += (target - state[loc]) * tc.Inertia
				hot := state[loc] + tc.NoiseC*noise(f.cfg.Seed, int64(r*3+li), t)
				cold := tc.AmbientC + tc.NoiseC*noise(f.cfg.Seed+1, int64(r*3+li), t)
				rows = append(rows,
					value.NewRow(
						"rack", value.Str(RackName(r)),
						"location", value.Str(loc),
						"aisle", value.Str("hot"),
						"time", value.TimeNanos(t*1e9),
						"temp", value.Float(hot),
					),
					value.NewRow(
						"rack", value.Str(RackName(r)),
						"location", value.Str(loc),
						"aisle", value.Str("cold"),
						"time", value.TimeNanos(t*1e9),
						"temp", value.Float(cold),
					),
				)
			}
		}
	}
	return dataset.FromRows(ctx, "rack_temperatures", rows, TemperatureSchema(), parts)
}
