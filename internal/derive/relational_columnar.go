package derive

import (
	"strings"

	"scrubjay/internal/dataset"
	"scrubjay/internal/frame"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// Vectorized filter and projection. Projection is a zero-copy column
// subset. The filter compiles the (column kind, operand kind) pair into a
// typed comparison loop over the column vector where the semantics of
// value.Value.Compare can be reproduced exactly; every other case falls
// back to the row path's own predicate evaluated per cell
// (frame.MaskValues), so the two paths cannot disagree.

// filterColumnar applies a compiled filter to a columnar dataset.
func filterColumnar(in *dataset.Dataset, schema semantics.Schema, name string,
	col, op string, operand value.Value, pred func(value.Value) bool) *dataset.Dataset {

	frames := rdd.Map(in.Frames(), func(f *frame.Frame) *frame.Frame {
		keep := filterMask(f, col, op, operand, pred)
		return f.FilterMask(keep)
	})
	return dataset.NewFrames(name, frames.WithName(name), schema)
}

// filterMask computes the keep mask for one batch. Null and absent cells
// never match, as on the row path.
func filterMask(f *frame.Frame, col, op string, operand value.Value, pred func(value.Value) bool) []bool {
	c := f.Col(col)
	if c != nil && c.Kind() != value.KindNull {
		if keep, ok := typedFilterMask(c, op, operand); ok {
			return keep
		}
	}
	return frame.MaskValues(f, col, func(v value.Value) bool {
		return !v.IsNull() && pred(v)
	})
}

// typedFilterMask evaluates a comparison op over a typed column vector,
// reproducing Value.Compare exactly: numeric kinds (bool/int/float)
// compare by float64 magnitude across kinds, strings lexically, times
// chronologically, and mismatched kinds by constant kind-tag difference.
// The second result is false when the case is not covered (caller falls
// back to the boxed predicate).
func typedFilterMask(c *frame.Column, op string, operand value.Value) ([]bool, bool) {
	n := c.Len()
	keep := make([]bool, n)
	if op == "contains" {
		if c.Kind() != value.KindString {
			return nil, false
		}
		needle := operand.String()
		strs := c.Strs()
		for i := 0; i < n; i++ {
			keep[i] = c.Present(i) && strings.Contains(strs[i], needle)
		}
		return keep, true
	}
	match, ok := cmpMatcher(op)
	if !ok {
		return nil, false
	}
	ck, okind := c.Kind(), operand.Kind()
	opF, opNumeric := operand.AsFloat()
	switch {
	case (ck == value.KindBool || ck == value.KindInt || ck == value.KindFloat) &&
		opNumeric && okind != value.KindTime:
		switch ck {
		case value.KindFloat:
			flts := c.Floats()
			for i := 0; i < n; i++ {
				keep[i] = c.Present(i) && match(cmpFloat(flts[i], opF))
			}
		default: // bool (0/1) and int share the ints vector
			ints := c.Ints()
			for i := 0; i < n; i++ {
				keep[i] = c.Present(i) && match(cmpFloat(float64(ints[i]), opF))
			}
		}
	case ck == value.KindString && okind == value.KindString:
		needle := operand.StrVal()
		strs := c.Strs()
		for i := 0; i < n; i++ {
			keep[i] = c.Present(i) && match(strings.Compare(strs[i], needle))
		}
	case ck == value.KindTime && okind == value.KindTime:
		opT := operand.TimeNanosVal()
		ints := c.Ints()
		for i := 0; i < n; i++ {
			keep[i] = c.Present(i) && match(cmpInt64(ints[i], opT))
		}
	case ck == value.KindSpan && okind == value.KindSpan:
		opS, opE := operand.SpanBounds()
		ints, ends := c.Ints(), c.SpanEnds()
		for i := 0; i < n; i++ {
			cmp := cmpInt64(ints[i], opS)
			if cmp == 0 {
				cmp = cmpInt64(ends[i], opE)
			}
			keep[i] = c.Present(i) && match(cmp)
		}
	default:
		// Mixed kinds order by kind tag — one constant answer per batch.
		hit := match(int(ck) - int(okind))
		for i := 0; i < n; i++ {
			keep[i] = c.Present(i) && hit
		}
	}
	return keep, true
}

func cmpMatcher(op string) (func(int) bool, bool) {
	switch op {
	case "==":
		return func(c int) bool { return c == 0 }, true
	case "!=":
		return func(c int) bool { return c != 0 }, true
	case "<":
		return func(c int) bool { return c < 0 }, true
	case "<=":
		return func(c int) bool { return c <= 0 }, true
	case ">":
		return func(c int) bool { return c > 0 }, true
	case ">=":
		return func(c int) bool { return c >= 0 }, true
	default:
		return nil, false
	}
}

// cmpFloat mirrors Value.Compare's numeric branch, including its NaN
// behavior (all comparisons false reads as equal).
func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
