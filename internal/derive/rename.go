package derive

import (
	"fmt"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// RenameColumn relabels a column without changing its semantics — part of
// the interoperability layer: external tools consuming unwrapped results
// often expect specific header names. Never auto-inserted by the engine
// (ScrubJay itself matches columns by semantics, not by name).
type RenameColumn struct {
	// From and To are the old and new column names.
	From string
	To   string
}

func init() {
	RegisterTransformation("rename_column", func(p map[string]any) (Transformation, error) {
		from, err := paramString(p, "from")
		if err != nil {
			return nil, err
		}
		to, err := paramString(p, "to")
		if err != nil {
			return nil, err
		}
		return &RenameColumn{From: from, To: to}, nil
	})
}

// Name implements Transformation.
func (r *RenameColumn) Name() string { return "rename_column" }

// Params implements Transformation.
func (r *RenameColumn) Params() map[string]any {
	return map[string]any{"from": r.From, "to": r.To}
}

// DeriveSchema implements Transformation.
func (r *RenameColumn) DeriveSchema(in semantics.Schema, dict *semantics.Dictionary) (semantics.Schema, error) {
	e, ok := in[r.From]
	if !ok {
		return nil, fmt.Errorf("rename_column: no column %q", r.From)
	}
	if r.To == "" || r.To == r.From {
		return nil, fmt.Errorf("rename_column: target name %q invalid", r.To)
	}
	if _, exists := in[r.To]; exists {
		return nil, fmt.Errorf("rename_column: column %q already exists", r.To)
	}
	out := in.Clone()
	delete(out, r.From)
	out[r.To] = e
	return out, nil
}

// Apply implements Transformation.
func (r *RenameColumn) Apply(in *dataset.Dataset, dict *semantics.Dictionary) (*dataset.Dataset, error) {
	schema, err := r.DeriveSchema(in.Schema(), dict)
	if err != nil {
		return nil, err
	}
	from, to := r.From, r.To
	rows := rdd.Map(in.Rows(), func(row value.Row) value.Row {
		v, ok := row[from]
		if !ok {
			return row
		}
		nr := row.Without(from)
		nr[to] = v
		return nr
	})
	name := fmt.Sprintf("%s|rename(%s->%s)", in.Name(), from, to)
	return matchRepr(in, dataset.New(name, rows.WithName(name), schema)), nil
}
