package derive

import (
	"fmt"
	"sort"
	"strings"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/units"
	"scrubjay/internal/value"
)

// DeriveRate converts cumulative counter columns into instantaneous rates
// (§7.3 "derive count rate"): node and CPU counters record cumulative event
// counts that reset at arbitrary intervals, so their absolute values are
// meaningless; the rate of change over the sampling window is the derived
// measurement. All counter columns are converted in one pass, matching the
// paper's Figure 7 ("Derive Count Rate ... several").
type DeriveRate struct {
	// TimeColumn is the datetime domain column; "" autodetects the single
	// datetime domain column.
	TimeColumn string
	// Columns are the counter columns to convert; empty autodetects every
	// cumulative counter value column.
	Columns []string
}

func init() {
	RegisterTransformation("derive_rate", func(p map[string]any) (Transformation, error) {
		tc, err := paramStringDefault(p, "time_column", "")
		if err != nil {
			return nil, err
		}
		var cols []string
		if raw, ok := p["columns"]; ok {
			list, ok := raw.([]any)
			if !ok {
				if sl, ok2 := raw.([]string); ok2 {
					cols = sl
				} else {
					return nil, fmt.Errorf("derive_rate: columns must be a list")
				}
			} else {
				for _, e := range list {
					s, ok := e.(string)
					if !ok {
						return nil, fmt.Errorf("derive_rate: columns must be strings")
					}
					cols = append(cols, s)
				}
			}
		}
		return &DeriveRate{TimeColumn: tc, Columns: cols}, nil
	})
	registerCandidateGenerator(func(s semantics.Schema, dict *semantics.Dictionary, _ CandidateOptions) []Transformation {
		d := &DeriveRate{}
		if _, _, err := d.resolve(s, dict); err == nil {
			return []Transformation{d}
		}
		return nil
	})
}

// Name implements Transformation.
func (d *DeriveRate) Name() string { return "derive_rate" }

// Params implements Transformation.
func (d *DeriveRate) Params() map[string]any {
	p := map[string]any{}
	if d.TimeColumn != "" {
		p["time_column"] = d.TimeColumn
	}
	if len(d.Columns) > 0 {
		cols := make([]any, len(d.Columns))
		for i, c := range d.Columns {
			cols[i] = c
		}
		p["columns"] = cols
	}
	return p
}

// isCounterEntry reports whether a column entry is a cumulative counter:
// a value on an ordered, discrete dimension whose units are not already a
// rate.
func isCounterEntry(e semantics.Entry, dict *semantics.Dictionary) bool {
	if e.Relation != semantics.Value {
		return false
	}
	dim, ok := dict.LookupDimension(e.Dimension)
	if !ok || !dim.Ordered || dim.Continuous {
		return false
	}
	if strings.Contains(e.Units, "/") {
		return false
	}
	if _, isList := units.IsList(e.Units); isList {
		return false
	}
	return true
}

// resolve determines the time column and counter columns.
func (d *DeriveRate) resolve(in semantics.Schema, dict *semantics.Dictionary) (timeCol string, counters []string, err error) {
	timeCol = d.TimeColumn
	if timeCol == "" {
		var times []string
		for _, c := range in.DomainColumns() {
			if in[c].Units == "datetime" {
				times = append(times, c)
			}
		}
		if len(times) != 1 {
			return "", nil, fmt.Errorf("derive_rate: need exactly one datetime domain column, found %d", len(times))
		}
		timeCol = times[0]
	} else if e, ok := in[timeCol]; !ok || e.Relation != semantics.Domain || e.Units != "datetime" {
		return "", nil, fmt.Errorf("derive_rate: column %q is not a datetime domain", timeCol)
	}
	counters = d.Columns
	if len(counters) == 0 {
		for _, c := range in.ValueColumns() {
			if isCounterEntry(in[c], dict) {
				counters = append(counters, c)
			}
		}
	} else {
		for _, c := range counters {
			e, ok := in[c]
			if !ok || !isCounterEntry(e, dict) {
				return "", nil, fmt.Errorf("derive_rate: column %q is not a cumulative counter", c)
			}
		}
	}
	if len(counters) == 0 {
		return "", nil, fmt.Errorf("derive_rate: no cumulative counter columns")
	}
	sort.Strings(counters)
	return timeCol, counters, nil
}

// RateColumn names the derived rate column for a counter column.
func RateColumn(counter string) string { return counter + "_rate" }

// DeriveSchema implements Transformation: each counter column is replaced by
// a rate column on dimension counter_dim/time_duration.
func (d *DeriveRate) DeriveSchema(in semantics.Schema, dict *semantics.Dictionary) (semantics.Schema, error) {
	_, counters, err := d.resolve(in, dict)
	if err != nil {
		return nil, err
	}
	out := in.Clone()
	for _, c := range counters {
		e := in[c]
		rc := RateColumn(c)
		if _, exists := out[rc]; exists {
			return nil, fmt.Errorf("derive_rate: output column %q already exists", rc)
		}
		delete(out, c)
		out[rc] = semantics.Entry{
			Relation:  semantics.Value,
			Dimension: e.Dimension + "/time_duration",
			Units:     units.Rate(e.Units, "seconds"),
		}
	}
	return out, nil
}

// Apply implements Transformation. Rows group by their non-time domain
// columns (the identity of the counter: one CPU, one socket), sort by time,
// and difference consecutive samples. Counter resets (a decrease) yield a
// null rate for that window rather than a bogus negative rate; the first
// sample of each group is dropped, having no predecessor.
func (d *DeriveRate) Apply(in *dataset.Dataset, dict *semantics.Dictionary) (*dataset.Dataset, error) {
	schema, err := d.DeriveSchema(in.Schema(), dict)
	if err != nil {
		return nil, err
	}
	timeCol, counters, err := d.resolve(in.Schema(), dict)
	if err != nil {
		return nil, err
	}
	var groupCols []string
	for _, c := range in.Schema().DomainColumns() {
		if c != timeCol {
			groupCols = append(groupCols, c)
		}
	}
	name := in.Name() + "|derive_rate"
	if in.IsColumnar() {
		return rateColumnar(in, schema, name, timeCol, counters, groupCols), nil
	}
	grouped := rdd.GroupByKey(rdd.WithWire(in.Rows(), rowWire), func(r value.Row) string {
		return r.KeyStringOn(groupCols)
	})
	rows := rdd.FlatMap(grouped, func(g rdd.Group[value.Row]) []value.Row {
		items := g.Items
		sort.SliceStable(items, func(i, j int) bool {
			return items[i].Get(timeCol).Compare(items[j].Get(timeCol)) < 0
		})
		out := make([]value.Row, 0, len(items))
		for i := 1; i < len(items); i++ {
			prev, cur := items[i-1], items[i]
			dtNanos := cur.Get(timeCol).TimeNanosVal() - prev.Get(timeCol).TimeNanosVal()
			if dtNanos <= 0 {
				continue
			}
			dt := float64(dtNanos) / 1e9
			nr := cur.Clone()
			for _, c := range counters {
				delete(nr, c)
				pv, pok := prev.Get(c).AsFloat()
				cv, cok := cur.Get(c).AsFloat()
				if !pok || !cok || cv < pv {
					// Missing sample or counter reset: no valid rate.
					continue
				}
				nr[RateColumn(c)] = value.Float((cv - pv) / dt)
			}
			out = append(out, nr)
		}
		return out
	})
	return dataset.New(name, rows.WithName(name), schema), nil
}
