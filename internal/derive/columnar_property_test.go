package derive

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// This suite pins the tentpole equivalence guarantee: every registered
// derivation produces bit-for-bit identical rows whether its inputs are
// row-form or columnar. Each derivation name has a generator of random
// valid instances; a registered derivation without a generator fails the
// suite, so a new operator cannot ship without columnar coverage. Outputs
// must agree as multisets at any partition count and in exact order on a
// single partition, and a columnar input must produce a columnar output.

type propInput struct {
	schema semantics.Schema
	rows   []value.Row
}

type propCase struct {
	params map[string]any
	inputs []propInput
}

func cloneRows(rows []value.Row) []value.Row {
	out := make([]value.Row, len(rows))
	for i, r := range rows {
		out[i] = r.Clone()
	}
	return out
}

func rowStrings(rows []value.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}

func propGenerators() map[string]func(*rand.Rand) propCase {
	mkFloat := func(rng *rand.Rand, base, spread float64) value.Value {
		return value.Float(base + spread*rng.Float64())
	}
	nodeTempRows := func(rng *rand.Rand) []value.Row {
		n := 5 + rng.Intn(40)
		rows := make([]value.Row, n)
		for i := range rows {
			r := value.NewRow("node", value.Str(fmt.Sprintf("n%d", rng.Intn(5))))
			switch rng.Intn(6) {
			case 0: // missing
			case 1: // mixed kind forces boxed storage
				r["temp"] = value.Int(int64(290 + rng.Intn(20)))
			default:
				r["temp"] = mkFloat(rng, 290, 20)
			}
			rows[i] = r
		}
		return rows
	}

	return map[string]func(*rand.Rand) propCase{
		"filter": func(rng *rand.Rand) propCase {
			s := semantics.NewSchema(
				"node", semantics.IDDomain("compute_node"),
				"temp", semantics.ValueEntry("temperature", "kelvin"),
			)
			var params map[string]any
			switch rng.Intn(5) {
			case 0:
				params = map[string]any{"column": "temp", "op": ">=", "operand": "300"}
			case 1:
				params = map[string]any{"column": "temp", "op": "<", "operand": "305.5"}
			case 2:
				params = map[string]any{"column": "temp", "op": "!=", "operand": "295"}
			case 3:
				params = map[string]any{"column": "node", "op": "==", "operand": "n1"}
			default:
				params = map[string]any{"column": "node", "op": "contains", "operand": "1"}
			}
			return propCase{params: params, inputs: []propInput{{s, nodeTempRows(rng)}}}
		},
		"project": func(rng *rand.Rand) propCase {
			s := semantics.NewSchema(
				"node", semantics.IDDomain("compute_node"),
				"load", semantics.ValueEntry("fraction", "fraction"),
				"temp", semantics.ValueEntry("temperature", "kelvin"),
			)
			n := 5 + rng.Intn(30)
			rows := make([]value.Row, n)
			for i := range rows {
				r := value.NewRow("node", value.Str(fmt.Sprintf("n%d", rng.Intn(4))),
					"temp", mkFloat(rng, 290, 20))
				if rng.Intn(3) > 0 {
					r["load"] = mkFloat(rng, 0, 1)
				}
				rows[i] = r
			}
			return propCase{params: map[string]any{"values": []string{"load"}},
				inputs: []propInput{{s, rows}}}
		},
		"aggregate": func(rng *rand.Rand) propCase {
			s := semantics.NewSchema(
				"node", semantics.IDDomain("compute_node"),
				"temp", semantics.ValueEntry("temperature", "kelvin"),
			)
			ops := []string{"mean", "sum", "min", "max", "count"}
			return propCase{
				params: map[string]any{
					"group_by": []string{"node"},
					"ops":      map[string]string{"temp": ops[rng.Intn(len(ops))]},
				},
				inputs: []propInput{{s, nodeTempRows(rng)}},
			}
		},
		"explode_discrete": func(rng *rand.Rand) propCase {
			s := semantics.NewSchema(
				"nodes", semantics.IDListDomain("compute_node"),
				"load", semantics.ValueEntry("fraction", "fraction"),
			)
			n := 5 + rng.Intn(25)
			rows := make([]value.Row, n)
			for i := range rows {
				r := value.NewRow("load", mkFloat(rng, 0, 1))
				switch rng.Intn(6) {
				case 0: // missing list
				case 1:
					r["nodes"] = value.Null()
				case 2:
					r["nodes"] = value.List()
				default:
					k := 1 + rng.Intn(3)
					elems := make([]value.Value, k)
					for j := range elems {
						elems[j] = value.Str(fmt.Sprintf("n%d", rng.Intn(6)))
					}
					r["nodes"] = value.List(elems...)
				}
				rows[i] = r
			}
			return propCase{params: map[string]any{"column": "nodes"},
				inputs: []propInput{{s, rows}}}
		},
		"explode_continuous": func(rng *rand.Rand) propCase {
			s := semantics.NewSchema(
				"span", semantics.SpanDomain(),
				"load", semantics.ValueEntry("fraction", "fraction"),
			)
			n := 5 + rng.Intn(25)
			rows := make([]value.Row, n)
			for i := range rows {
				r := value.NewRow("load", mkFloat(rng, 0, 1))
				switch rng.Intn(6) {
				case 0: // missing span
				case 1: // wrong kind drops the row
					r["span"] = value.Str("bogus")
				default:
					start := int64(rng.Intn(5_000_000_000)) - 2_000_000_000
					r["span"] = value.Span(start, start+int64(rng.Intn(3_000_000_000)))
				}
				rows[i] = r
			}
			return propCase{params: map[string]any{"column": "span", "period_seconds": 0.5},
				inputs: []propInput{{s, rows}}}
		},
		"derive_rate": func(rng *rand.Rand) propCase {
			s := semantics.NewSchema(
				"t", semantics.TimeDomain(),
				"cpu", semantics.IDDomain("cpu"),
				"instr", semantics.ValueEntry("instructions", "instructions"),
			)
			n := 6 + rng.Intn(40)
			rows := make([]value.Row, n)
			counts := map[int]int64{}
			for i := range rows {
				c := rng.Intn(3)
				counts[c] += int64(rng.Intn(1000))
				if rng.Intn(8) == 0 {
					counts[c] = int64(rng.Intn(100)) // counter reset
				}
				r := value.NewRow("cpu", value.Str(fmt.Sprintf("c%d", c)))
				if rng.Intn(10) > 0 {
					r["t"] = value.TimeNanos(int64(rng.Intn(20)) * 500_000_000)
				}
				switch rng.Intn(6) {
				case 0: // missing sample
				case 1:
					r["instr"] = value.Float(float64(counts[c]))
				default:
					r["instr"] = value.Int(counts[c])
				}
				rows[i] = r
			}
			return propCase{params: map[string]any{}, inputs: []propInput{{s, rows}}}
		},
		"rename_column": func(rng *rand.Rand) propCase {
			s := semantics.NewSchema(
				"node", semantics.IDDomain("compute_node"),
				"temp", semantics.ValueEntry("temperature", "kelvin"),
			)
			return propCase{params: map[string]any{"from": "temp", "to": "T"},
				inputs: []propInput{{s, nodeTempRows(rng)}}}
		},
		"convert_units": func(rng *rand.Rand) propCase {
			s := semantics.NewSchema(
				"node", semantics.IDDomain("compute_node"),
				"temp", semantics.ValueEntry("temperature", "kelvin"),
			)
			rows := nodeTempRows(rng)
			if rng.Intn(2) == 0 {
				// All-float, all-present column: the dense vector fast path.
				for _, r := range rows {
					r["temp"] = mkFloat(rng, 290, 20)
				}
			}
			return propCase{params: map[string]any{"column": "temp", "to": "degrees_celsius"},
				inputs: []propInput{{s, rows}}}
		},
		"derive_ratio": func(rng *rand.Rand) propCase {
			s := semantics.NewSchema(
				"node", semantics.IDDomain("compute_node"),
				"instr", semantics.ValueEntry("instructions", "instructions"),
				"dur", semantics.ValueEntry("time_duration", "seconds"),
			)
			n := 5 + rng.Intn(30)
			rows := make([]value.Row, n)
			for i := range rows {
				r := value.NewRow("node", value.Str(fmt.Sprintf("n%d", rng.Intn(4))))
				if rng.Intn(5) > 0 {
					r["instr"] = value.Int(int64(rng.Intn(100000)))
				}
				switch rng.Intn(5) {
				case 0: // missing denominator
				case 1:
					r["dur"] = value.Float(0) // division by zero
				default:
					r["dur"] = mkFloat(rng, 0.1, 10)
				}
				rows[i] = r
			}
			return propCase{
				params: map[string]any{"numerator": "instr", "denominator": "dur", "as": "ips"},
				inputs: []propInput{{s, rows}}}
		},
		"derive_duration": func(rng *rand.Rand) propCase {
			s := semantics.NewSchema(
				"span", semantics.SpanDomain(),
				"load", semantics.ValueEntry("fraction", "fraction"),
			)
			n := 5 + rng.Intn(25)
			rows := make([]value.Row, n)
			for i := range rows {
				r := value.NewRow("load", mkFloat(rng, 0, 1))
				if rng.Intn(6) > 0 {
					start := int64(rng.Intn(4_000_000_000))
					r["span"] = value.Span(start, start+int64(rng.Intn(2_000_000_000)))
				}
				rows[i] = r
			}
			return propCase{params: map[string]any{}, inputs: []propInput{{s, rows}}}
		},
		"derive_heat": func(rng *rand.Rand) propCase {
			s := semantics.NewSchema(
				"aisle", semantics.IDDomain("rack_aisle"),
				"rack", semantics.IDDomain("rack"),
				"t", semantics.TimeDomain(),
				"temp", semantics.ValueEntry("temperature", "kelvin"),
			)
			n := 6 + rng.Intn(40)
			rows := make([]value.Row, n)
			aisles := []string{AisleHot, AisleCold, "other"}
			for i := range rows {
				r := value.NewRow(
					"aisle", value.Str(aisles[rng.Intn(len(aisles))]),
					"rack", value.Str(fmt.Sprintf("r%d", rng.Intn(3))),
					"t", value.TimeNanos(int64(rng.Intn(4))*1_000_000_000),
				)
				if rng.Intn(6) > 0 {
					r["temp"] = mkFloat(rng, 290, 20)
				}
				rows[i] = r
			}
			return propCase{params: map[string]any{}, inputs: []propInput{{s, rows}}}
		},
		"derive_active_frequency": func(rng *rand.Rand) propCase {
			s := semantics.NewSchema(
				"cpu", semantics.IDDomain("cpu"),
				"aperf", semantics.ValueEntry("aperf_cycles/time_duration", "count/seconds"),
				"mperf", semantics.ValueEntry("mperf_cycles/time_duration", "count/seconds"),
				"freq", semantics.ValueEntry("frequency", "gigahertz"),
			)
			n := 5 + rng.Intn(30)
			rows := make([]value.Row, n)
			for i := range rows {
				r := value.NewRow("cpu", value.Str(fmt.Sprintf("c%d", rng.Intn(4))),
					"freq", mkFloat(rng, 1, 3))
				if rng.Intn(5) > 0 {
					r["aperf"] = mkFloat(rng, 0, 3e9)
				}
				switch rng.Intn(5) {
				case 0: // missing
				case 1:
					r["mperf"] = value.Float(0)
				default:
					r["mperf"] = mkFloat(rng, 1e9, 2e9)
				}
				rows[i] = r
			}
			return propCase{params: map[string]any{}, inputs: []propInput{{s, rows}}}
		},
		"natural_join": func(rng *rand.Rand) propCase {
			if rng.Intn(3) == 0 {
				// Convertible-units join: the right side keys in Celsius and
				// must rescale to the left's Kelvin before matching.
				ls := semantics.NewSchema(
					"temp_k", semantics.DomainEntry("temperature", "kelvin"),
					"load", semantics.ValueEntry("fraction", "fraction"),
				)
				rs := semantics.NewSchema(
					"temp_c", semantics.DomainEntry("temperature", "degrees_celsius"),
					"fan", semantics.ValueEntry("fan_speed", "rpm"),
				)
				kelvins := []float64{290, 295.5, 300, 301.25}
				nl, nr := 1+rng.Intn(20), 1+rng.Intn(20)
				lrows := make([]value.Row, nl)
				for i := range lrows {
					lrows[i] = value.NewRow("temp_k", value.Float(kelvins[rng.Intn(len(kelvins))]),
						"load", value.Float(float64(i)))
				}
				rrows := make([]value.Row, nr)
				for i := range rrows {
					rrows[i] = value.NewRow("temp_c", value.Float(kelvins[rng.Intn(len(kelvins))]-273.15),
						"fan", value.Float(float64(1000+i)))
				}
				return propCase{inputs: []propInput{{ls, lrows}, {rs, rrows}}}
			}
			ls := semantics.NewSchema(
				"node", semantics.IDDomain("compute_node"),
				"cpu", semantics.IDDomain("cpu"),
				"load", semantics.ValueEntry("fraction", "fraction"),
			)
			rs := semantics.NewSchema(
				"node_id", semantics.IDDomain("compute_node"),
				"cpu_id", semantics.IDDomain("cpu"),
				"temp", semantics.ValueEntry("temperature", "kelvin"),
			)
			keys := 1 + rng.Intn(6)
			nl, nr := 1+rng.Intn(40), 1+rng.Intn(40)
			lrows := make([]value.Row, nl)
			for i := range lrows {
				r := value.NewRow("node", value.Str(fmt.Sprintf("n%d", rng.Intn(keys))),
					"cpu", value.Str(fmt.Sprintf("c%d", rng.Intn(keys))))
				if rng.Intn(4) > 0 {
					r["load"] = value.Float(float64(i))
				}
				if rng.Intn(12) == 0 {
					delete(r, "node") // missing key cells must agree too
				}
				lrows[i] = r
			}
			rrows := make([]value.Row, nr)
			for i := range rrows {
				r := value.NewRow("node_id", value.Str(fmt.Sprintf("n%d", rng.Intn(keys))),
					"cpu_id", value.Str(fmt.Sprintf("c%d", rng.Intn(keys))),
					"temp", value.Float(300+float64(i)))
				if rng.Intn(12) == 0 {
					delete(r, "node_id")
				}
				rrows[i] = r
			}
			return propCase{inputs: []propInput{{ls, lrows}, {rs, rrows}}}
		},
		"interpolation_join": func(rng *rand.Rand) propCase {
			ls := semantics.NewSchema(
				"node", semantics.IDDomain("compute_node"),
				"t", semantics.TimeDomain(),
				"load", semantics.ValueEntry("fraction", "fraction"),
			)
			rs := semantics.NewSchema(
				"node_id", semantics.IDDomain("compute_node"),
				"time", semantics.TimeDomain(),
				"sensor", semantics.IDDomain("rack"),
				"temp", semantics.ValueEntry("temperature", "kelvin"),
				"state", semantics.ValueEntry("identity", "identifier"),
			)
			nl, nr := 1+rng.Intn(25), 1+rng.Intn(25)
			instant := func() value.Value {
				return value.TimeNanos(int64(rng.Intn(10_000)) * 1_000_000)
			}
			lrows := make([]value.Row, nl)
			for i := range lrows {
				r := value.NewRow("node", value.Str(fmt.Sprintf("n%d", rng.Intn(3))),
					"load", value.Float(float64(i)))
				if rng.Intn(10) > 0 {
					r["t"] = instant()
				}
				lrows[i] = r
			}
			rrows := make([]value.Row, nr)
			for i := range rrows {
				r := value.NewRow("node_id", value.Str(fmt.Sprintf("n%d", rng.Intn(3))),
					"sensor", value.Str(fmt.Sprintf("s%d", rng.Intn(2))),
					"state", value.Str(fmt.Sprintf("ok%d", rng.Intn(2))))
				if rng.Intn(10) > 0 {
					r["time"] = instant()
				}
				if rng.Intn(5) > 0 {
					r["temp"] = mkFloat(rng, 290, 20)
				}
				rrows[i] = r
			}
			return propCase{params: map[string]any{"window_seconds": 1.0},
				inputs: []propInput{{ls, lrows}, {rs, rrows}}}
		},
	}
}

func applyDerivation(name string, pc propCase, ds []*dataset.Dataset, dict *semantics.Dictionary) (*dataset.Dataset, error) {
	if len(ds) == 2 {
		c, err := NewCombination(name, pc.params)
		if err != nil {
			return nil, err
		}
		return c.Apply(ds[0], ds[1], dict)
	}
	tr, err := NewTransformation(name, pc.params)
	if err != nil {
		return nil, err
	}
	return tr.Apply(ds[0], dict)
}

// TestColumnarMatchesRowPath runs every registered derivation on identical
// random inputs through both execution paths and requires identical rows:
// as a multiset always, and in exact order on one partition.
func TestColumnarMatchesRowPath(t *testing.T) {
	dict := semantics.DefaultDictionary()
	gens := propGenerators()

	names := append(TransformationNames(), CombinationNames()...)
	for _, name := range names {
		gen, ok := gens[name]
		if !ok {
			t.Errorf("registered derivation %q has no columnar property generator; add one to propGenerators", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(name)*131 + 7)))
			for trial := 0; trial < 12; trial++ {
				pc := gen(rng)
				for _, parts := range []int{1, 3} {
					ctx := rdd.NewContext(3)
					rowIn := make([]*dataset.Dataset, len(pc.inputs))
					colIn := make([]*dataset.Dataset, len(pc.inputs))
					for i, in := range pc.inputs {
						nm := fmt.Sprintf("in%d", i)
						rowIn[i] = dataset.FromRows(ctx, nm, cloneRows(in.rows), in.schema, parts)
						colIn[i] = dataset.FromRowsColumnar(ctx, nm, cloneRows(in.rows), in.schema, parts)
					}
					rowOut, err := applyDerivation(name, pc, rowIn, dict)
					if err != nil {
						t.Fatalf("trial %d parts %d: row path: %v", trial, parts, err)
					}
					colOut, err := applyDerivation(name, pc, colIn, dict)
					if err != nil {
						t.Fatalf("trial %d parts %d: columnar path: %v", trial, parts, err)
					}
					if !colOut.IsColumnar() {
						t.Fatalf("trial %d parts %d: columnar input produced a row-form output", trial, parts)
					}
					got := rowStrings(colOut.Collect())
					want := rowStrings(rowOut.Collect())
					if parts == 1 {
						if len(got) != len(want) {
							t.Fatalf("trial %d: got %d rows, want %d", trial, len(got), len(want))
						}
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("trial %d row %d (single partition, exact order):\n got %s\nwant %s",
									trial, i, got[i], want[i])
							}
						}
						continue
					}
					sort.Strings(got)
					sort.Strings(want)
					if len(got) != len(want) {
						t.Fatalf("trial %d parts %d: got %d rows, want %d", trial, parts, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("trial %d parts %d row %d (sorted):\n got %s\nwant %s",
								trial, parts, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}
