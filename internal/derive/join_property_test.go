package derive

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// referenceNaturalJoin computes the natural join by nested loops: for every
// left/right row pair, if all join-column values match exactly, merge.
func referenceNaturalJoin(left, right []value.Row, pairs []joinPair) []value.Row {
	var out []value.Row
	for _, l := range left {
		for _, r := range right {
			match := true
			for _, p := range pairs {
				if !l.Get(p.LeftCol).Equal(r.Get(p.RightCol)) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			m := r.Clone()
			for _, p := range pairs {
				if p.RightCol != p.LeftCol {
					delete(m, p.RightCol)
				}
			}
			out = append(out, l.Merge(m))
		}
	}
	return out
}

func canonRows(rows []value.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

// TestNaturalJoinMatchesReference compares the shuffled hash join against
// the nested-loop reference on random instances with duplicate keys,
// missing values, and multiple shared dimensions.
func TestNaturalJoinMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dict := semantics.DefaultDictionary()
	ls := semantics.NewSchema(
		"node", semantics.IDDomain("compute_node"),
		"cpu", semantics.IDDomain("cpu"),
		"load", semantics.ValueEntry("fraction", "fraction"),
	)
	rs := semantics.NewSchema(
		"node_id", semantics.IDDomain("compute_node"),
		"cpu_id", semantics.IDDomain("cpu"),
		"temp", semantics.ValueEntry("temperature", "kelvin"),
	)
	pairs := []joinPair{
		{Dim: "compute_node", LeftCol: "node", RightCol: "node_id"},
		{Dim: "cpu", LeftCol: "cpu", RightCol: "cpu_id"},
	}
	for trial := 0; trial < 25; trial++ {
		nl, nr := 1+rng.Intn(40), 1+rng.Intn(40)
		keys := 1 + rng.Intn(6) // few distinct keys -> many duplicates
		mkLeft := func(i int) value.Row {
			r := value.NewRow(
				"node", value.Str(fmt.Sprintf("n%d", rng.Intn(keys))),
				"cpu", value.Str(fmt.Sprintf("c%d", rng.Intn(keys))),
			)
			if rng.Intn(4) > 0 {
				r["load"] = value.Float(float64(i))
			}
			return r
		}
		mkRight := func(i int) value.Row {
			return value.NewRow(
				"node_id", value.Str(fmt.Sprintf("n%d", rng.Intn(keys))),
				"cpu_id", value.Str(fmt.Sprintf("c%d", rng.Intn(keys))),
				"temp", value.Float(300+float64(i)),
			)
		}
		lrows := make([]value.Row, nl)
		for i := range lrows {
			lrows[i] = mkLeft(i)
		}
		rrows := make([]value.Row, nr)
		for i := range rrows {
			rrows[i] = mkRight(i)
		}
		ctx := rdd.NewContext(3)
		left := dataset.FromRows(ctx, "l", lrows, ls, 3)
		right := dataset.FromRows(ctx, "r", rrows, rs, 2)
		out, err := (&NaturalJoin{}).Apply(left, right, dict)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := canonRows(out.Collect())
		want := canonRows(referenceNaturalJoin(lrows, rrows, pairs))
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d rows, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d row %d:\n got %s\nwant %s", trial, i, got[i], want[i])
			}
		}
	}
}

// TestNaturalJoinOutputInvariant: every output row carries every domain
// dimension of both inputs, and the join column values come from the left
// naming.
func TestNaturalJoinOutputInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dict := semantics.DefaultDictionary()
	ls := semantics.NewSchema(
		"node", semantics.IDDomain("compute_node"),
		"v", semantics.ValueEntry("power", "watts"),
	)
	rs := semantics.NewSchema(
		"NODEID", semantics.IDDomain("compute_node"),
		"rack", semantics.IDDomain("rack"),
	)
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(30)
		lrows := make([]value.Row, n)
		rrows := make([]value.Row, n)
		for i := range lrows {
			lrows[i] = value.NewRow("node", value.Str(fmt.Sprintf("n%d", rng.Intn(8))), "v", value.Float(1))
			rrows[i] = value.NewRow("NODEID", value.Str(fmt.Sprintf("n%d", rng.Intn(8))), "rack", value.Str("r"))
		}
		ctx := rdd.NewContext(2)
		out, err := (&NaturalJoin{}).Apply(
			dataset.FromRows(ctx, "l", lrows, ls, 2),
			dataset.FromRows(ctx, "r", rrows, rs, 2), dict)
		if err != nil {
			t.Fatal(err)
		}
		sch := out.Schema()
		if !sch.HasDomainDimension("compute_node") || !sch.HasDomainDimension("rack") {
			t.Fatalf("schema lost domains: %v", sch)
		}
		for _, r := range out.Collect() {
			if !r.Has("node") || r.Has("NODEID") {
				t.Fatalf("join naming invariant violated: %v", r)
			}
		}
	}
}
