package derive

import (
	"fmt"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// DeriveActiveFrequency computes the active CPU frequency from APERF/MPERF
// counter rates and the CPU's base frequency (§7.3): MPERF increments at the
// base frequency and APERF at the active frequency, so
//
//	active = (APERF rate / MPERF rate) * base frequency.
//
// The base frequency is not available from the counters themselves; it
// arrives via a natural join with the static CPU-specification dataset,
// which is exactly the relation the derivation engine infers in the paper's
// Figure 7.
type DeriveActiveFrequency struct {
	// AperfRate, MperfRate, and BaseFrequency name the input value columns;
	// empty fields autodetect by dimension (aperf_cycles/time_duration,
	// mperf_cycles/time_duration, frequency).
	AperfRate     string
	MperfRate     string
	BaseFrequency string
	// As names the output column; defaults to "active_frequency".
	As string
}

func init() {
	RegisterTransformation("derive_active_frequency", func(p map[string]any) (Transformation, error) {
		a, err := paramStringDefault(p, "aperf_rate", "")
		if err != nil {
			return nil, err
		}
		m, err := paramStringDefault(p, "mperf_rate", "")
		if err != nil {
			return nil, err
		}
		b, err := paramStringDefault(p, "base_frequency", "")
		if err != nil {
			return nil, err
		}
		as, err := paramStringDefault(p, "as", "")
		if err != nil {
			return nil, err
		}
		return &DeriveActiveFrequency{AperfRate: a, MperfRate: m, BaseFrequency: b, As: as}, nil
	})
	registerCandidateGenerator(func(s semantics.Schema, dict *semantics.Dictionary, _ CandidateOptions) []Transformation {
		d := &DeriveActiveFrequency{}
		if _, _, _, err := d.resolve(s); err == nil {
			return []Transformation{d}
		}
		return nil
	})
}

// Name implements Transformation.
func (d *DeriveActiveFrequency) Name() string { return "derive_active_frequency" }

// Params implements Transformation.
func (d *DeriveActiveFrequency) Params() map[string]any {
	p := map[string]any{}
	if d.AperfRate != "" {
		p["aperf_rate"] = d.AperfRate
	}
	if d.MperfRate != "" {
		p["mperf_rate"] = d.MperfRate
	}
	if d.BaseFrequency != "" {
		p["base_frequency"] = d.BaseFrequency
	}
	if d.As != "" {
		p["as"] = d.As
	}
	return p
}

func (d *DeriveActiveFrequency) out() string {
	if d.As != "" {
		return d.As
	}
	return "active_frequency"
}

func pickOne(in semantics.Schema, explicit, what string, rel semantics.RelationType, dim string) (string, error) {
	if explicit != "" {
		e, ok := in[explicit]
		if !ok || e.Relation != rel || e.Dimension != dim {
			return "", fmt.Errorf("derive_active_frequency: column %q is not a %s", explicit, what)
		}
		return explicit, nil
	}
	cols := in.ColumnsOnDimension(rel, dim)
	if len(cols) != 1 {
		return "", fmt.Errorf("derive_active_frequency: need exactly one %s column, found %d", what, len(cols))
	}
	return cols[0], nil
}

func (d *DeriveActiveFrequency) resolve(in semantics.Schema) (aperf, mperf, base string, err error) {
	aperf, err = pickOne(in, d.AperfRate, "APERF rate", semantics.Value, "aperf_cycles/time_duration")
	if err != nil {
		return
	}
	mperf, err = pickOne(in, d.MperfRate, "MPERF rate", semantics.Value, "mperf_cycles/time_duration")
	if err != nil {
		return
	}
	base, err = pickOne(in, d.BaseFrequency, "base frequency", semantics.Value, "frequency")
	return
}

// DeriveSchema implements Transformation: adds an active-frequency value
// column in the base frequency's units.
func (d *DeriveActiveFrequency) DeriveSchema(in semantics.Schema, dict *semantics.Dictionary) (semantics.Schema, error) {
	_, _, base, err := d.resolve(in)
	if err != nil {
		return nil, err
	}
	if _, exists := in[d.out()]; exists {
		return nil, fmt.Errorf("derive_active_frequency: output column %q already exists", d.out())
	}
	out := in.Clone()
	out[d.out()] = semantics.Entry{
		Relation:  semantics.Value,
		Dimension: "active_frequency",
		Units:     in[base].Units,
	}
	return out, nil
}

// Apply implements Transformation. Rows missing any operand, or with a zero
// MPERF rate (idle window), carry no active-frequency value.
func (d *DeriveActiveFrequency) Apply(in *dataset.Dataset, dict *semantics.Dictionary) (*dataset.Dataset, error) {
	schema, err := d.DeriveSchema(in.Schema(), dict)
	if err != nil {
		return nil, err
	}
	aperf, mperf, base, err := d.resolve(in.Schema())
	if err != nil {
		return nil, err
	}
	out := d.out()
	rows := rdd.Map(in.Rows(), func(r value.Row) value.Row {
		a, aok := r.Get(aperf).AsFloat()
		m, mok := r.Get(mperf).AsFloat()
		b, bok := r.Get(base).AsFloat()
		if !aok || !mok || !bok || m == 0 {
			return r
		}
		return r.With(out, value.Float(a/m*b))
	})
	name := in.Name() + "|derive_active_frequency"
	return matchRepr(in, dataset.New(name, rows.WithName(name), schema)), nil
}
