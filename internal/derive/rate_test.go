package derive

import (
	"math"
	"testing"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

func counterSchema() semantics.Schema {
	return semantics.NewSchema(
		"time", semantics.TimeDomain(),
		"cpu_id", semantics.IDDomain("cpu"),
		"instructions", semantics.ValueEntry("instructions", "count"),
		"aperf", semantics.ValueEntry("aperf_cycles", "count"),
	)
}

func counterRows() []value.Row {
	mk := func(t int64, cpu string, ins, ap int64) value.Row {
		return value.NewRow(
			"time", value.TimeNanos(t*1e9),
			"cpu_id", value.Str(cpu),
			"instructions", value.Int(ins),
			"aperf", value.Int(ap),
		)
	}
	return []value.Row{
		mk(0, "c0", 0, 0),
		mk(2, "c0", 2000, 100),
		mk(4, "c0", 6000, 300),
		mk(6, "c0", 1000, 400), // instruction counter reset
		mk(0, "c1", 500, 0),
		mk(2, "c1", 1500, 50),
	}
}

func TestDeriveRateSchema(t *testing.T) {
	dict := semantics.DefaultDictionary()
	d := &DeriveRate{}
	out, err := d.DeriveSchema(counterSchema(), dict)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out["instructions"]; ok {
		t.Error("counter column should be replaced")
	}
	e, ok := out["instructions_rate"]
	if !ok || e.Dimension != "instructions/time_duration" || e.Units != "count/seconds" {
		t.Errorf("rate entry = %v", e)
	}
	if _, ok := out["aperf_rate"]; !ok {
		t.Error("aperf_rate missing")
	}
	if err := out.Validate(dict); err != nil {
		t.Errorf("derived schema invalid: %v", err)
	}
}

func TestDeriveRateApply(t *testing.T) {
	ctx := rdd.NewContext(2)
	dict := semantics.DefaultDictionary()
	ds := dataset.FromRows(ctx, "papi", counterRows(), counterSchema(), 2)
	out, err := (&DeriveRate{}).Apply(ds, dict)
	if err != nil {
		t.Fatal(err)
	}
	rows := out.SortedBy("cpu_id", "time")
	// c0: samples at 0,2,4,6 -> rates at 2,4,6 (6 has a reset -> null rate
	// for instructions, valid for aperf). c1: rate at 2.
	if len(rows) != 4 {
		t.Fatalf("rows = %d: %v", len(rows), rows)
	}
	r2 := rows[0] // c0 t=2
	if got := r2.Get("instructions_rate").FloatVal(); math.Abs(got-1000) > 1e-9 {
		t.Errorf("rate at t=2 = %v, want 1000/s", got)
	}
	if got := r2.Get("aperf_rate").FloatVal(); math.Abs(got-50) > 1e-9 {
		t.Errorf("aperf rate at t=2 = %v, want 50/s", got)
	}
	r4 := rows[1]
	if got := r4.Get("instructions_rate").FloatVal(); math.Abs(got-2000) > 1e-9 {
		t.Errorf("rate at t=4 = %v, want 2000/s", got)
	}
	r6 := rows[2]
	if r6.Has("instructions_rate") {
		t.Errorf("reset window should have no instruction rate: %v", r6)
	}
	if got := r6.Get("aperf_rate").FloatVal(); math.Abs(got-50) > 1e-9 {
		t.Errorf("aperf rate at t=6 = %v, want 50/s", got)
	}
	// Groups are independent: c1's rate used only c1 samples.
	rc1 := rows[3]
	if rc1.Get("cpu_id").StrVal() != "c1" {
		t.Fatalf("expected c1 row, got %v", rc1)
	}
	if got := rc1.Get("instructions_rate").FloatVal(); math.Abs(got-500) > 1e-9 {
		t.Errorf("c1 rate = %v, want 500/s", got)
	}
	if err := out.Validate(dict); err != nil {
		t.Errorf("derived dataset invalid: %v", err)
	}
}

func TestDeriveRateExplicitColumns(t *testing.T) {
	ctx := rdd.NewContext(1)
	dict := semantics.DefaultDictionary()
	ds := dataset.FromRows(ctx, "papi", counterRows(), counterSchema(), 1)
	out, err := (&DeriveRate{Columns: []string{"instructions"}}).Apply(ds, dict)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.Schema()["aperf"]; !ok {
		t.Error("unlisted counter should remain")
	}
	if _, ok := out.Schema()["instructions_rate"]; !ok {
		t.Error("listed counter should be converted")
	}
}

func TestDeriveRateErrors(t *testing.T) {
	dict := semantics.DefaultDictionary()
	// No time column.
	s1 := semantics.NewSchema("c", semantics.ValueEntry("count", "count"))
	if _, err := (&DeriveRate{}).DeriveSchema(s1, dict); err == nil {
		t.Error("missing time column should fail")
	}
	// No counters.
	s2 := semantics.NewSchema("time", semantics.TimeDomain(),
		"temp", semantics.ValueEntry("temperature", "degrees_celsius"))
	if _, err := (&DeriveRate{}).DeriveSchema(s2, dict); err == nil {
		t.Error("no counters should fail")
	}
	// Explicit non-counter column.
	if _, err := (&DeriveRate{Columns: []string{"temp"}}).DeriveSchema(s2, dict); err == nil {
		t.Error("non-counter column should fail")
	}
	// Bad explicit time column.
	s3 := counterSchema()
	if _, err := (&DeriveRate{TimeColumn: "cpu_id"}).DeriveSchema(s3, dict); err == nil {
		t.Error("non-datetime time column should fail")
	}
}

func TestDeriveRateRegistryRoundTrip(t *testing.T) {
	d := &DeriveRate{TimeColumn: "time", Columns: []string{"aperf", "instructions"}}
	rebuilt, err := NewTransformation(d.Name(), d.Params())
	if err != nil {
		t.Fatal(err)
	}
	dict := semantics.DefaultDictionary()
	a, _ := d.DeriveSchema(counterSchema(), dict)
	b, err := rebuilt.DeriveSchema(counterSchema(), dict)
	if err != nil || !a.Equal(b) {
		t.Errorf("rebuilt derive_rate differs: %v", err)
	}
}

func TestDeriveRateCandidate(t *testing.T) {
	dict := semantics.DefaultDictionary()
	cands := Candidates(counterSchema(), dict, DefaultCandidateOptions())
	found := false
	for _, c := range cands {
		if c.Name() == "derive_rate" {
			found = true
		}
	}
	if !found {
		t.Error("derive_rate should be a candidate for counter schema")
	}
}

func TestConvertUnits(t *testing.T) {
	ctx := rdd.NewContext(1)
	dict := semantics.DefaultDictionary()
	s := semantics.NewSchema(
		"t", semantics.TimeDomain(),
		"temp", semantics.ValueEntry("temperature", "degrees_celsius"),
	)
	rows := []value.Row{
		value.NewRow("t", value.TimeNanos(0), "temp", value.Float(100)),
		value.NewRow("t", value.TimeNanos(1e9)),
	}
	ds := dataset.FromRows(ctx, "temps", rows, s, 1)
	out, err := (&ConvertUnits{Column: "temp", To: "degrees_fahrenheit"}).Apply(ds, dict)
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema()["temp"].Units != "degrees_fahrenheit" {
		t.Errorf("units = %v", out.Schema()["temp"])
	}
	got := out.SortedBy("t")
	if v := got[0].Get("temp").FloatVal(); math.Abs(v-212) > 1e-9 {
		t.Errorf("100C = %vF, want 212", v)
	}
	if got[1].Has("temp") {
		t.Error("null cell should stay null")
	}

	// Errors.
	if _, err := (&ConvertUnits{Column: "nope", To: "kelvin"}).DeriveSchema(s, dict); err == nil {
		t.Error("missing column should fail")
	}
	if _, err := (&ConvertUnits{Column: "temp", To: "watts"}).DeriveSchema(s, dict); err == nil {
		t.Error("cross-dimension conversion should fail")
	}
	if _, err := (&ConvertUnits{Column: "t", To: "seconds"}).DeriveSchema(s, dict); err == nil {
		t.Error("structural time column should fail")
	}
}

func TestDeriveRatio(t *testing.T) {
	ctx := rdd.NewContext(1)
	dict := semantics.DefaultDictionary()
	s := semantics.NewSchema(
		"job_id", semantics.IDDomain("job"),
		"instructions", semantics.ValueEntry("instructions", "count"),
		"elapsed", semantics.ValueEntry("time_duration", "seconds"),
	)
	rows := []value.Row{
		value.NewRow("job_id", value.Str("a"), "instructions", value.Int(1000), "elapsed", value.Float(4)),
		value.NewRow("job_id", value.Str("b"), "instructions", value.Int(1000), "elapsed", value.Float(0)),
		value.NewRow("job_id", value.Str("c"), "elapsed", value.Float(5)),
	}
	ds := dataset.FromRows(ctx, "jobs", rows, s, 1)
	d := &DeriveRatio{Numerator: "instructions", Denominator: "elapsed", As: "ipc"}
	out, err := d.Apply(ds, dict)
	if err != nil {
		t.Fatal(err)
	}
	e := out.Schema()["ipc"]
	if e.Dimension != "instructions/time_duration" || e.Units != "count/seconds" {
		t.Errorf("ratio entry = %v", e)
	}
	got := out.SortedBy("job_id")
	if v := got[0].Get("ipc").FloatVal(); math.Abs(v-250) > 1e-9 {
		t.Errorf("ratio = %v", v)
	}
	if got[1].Has("ipc") {
		t.Error("division by zero should yield no value")
	}
	if got[2].Has("ipc") {
		t.Error("missing numerator should yield no value")
	}

	// Errors.
	if _, err := (&DeriveRatio{Numerator: "job_id", Denominator: "elapsed", As: "x"}).DeriveSchema(s, dict); err == nil {
		t.Error("domain numerator should fail")
	}
	if _, err := (&DeriveRatio{Numerator: "instructions", Denominator: "elapsed", As: "elapsed"}).DeriveSchema(s, dict); err == nil {
		t.Error("existing output column should fail")
	}
	if _, err := (&DeriveRatio{Numerator: "instructions", Denominator: "elapsed"}).DeriveSchema(s, dict); err == nil {
		t.Error("empty output name should fail")
	}
}

func TestDeriveHeat(t *testing.T) {
	ctx := rdd.NewContext(2)
	dict := semantics.DefaultDictionary()
	s := semantics.NewSchema(
		"time", semantics.TimeDomain(),
		"rack", semantics.IDDomain("rack"),
		"location", semantics.IDDomain("rack_location"),
		"aisle", semantics.IDDomain("rack_aisle"),
		"temp", semantics.ValueEntry("temperature", "degrees_celsius"),
	)
	mk := func(t int64, rack, loc, aisle string, temp float64) value.Row {
		return value.NewRow("time", value.TimeNanos(t*1e9), "rack", value.Str(rack),
			"location", value.Str(loc), "aisle", value.Str(aisle), "temp", value.Float(temp))
	}
	rows := []value.Row{
		mk(0, "r17", "top", AisleHot, 35), mk(0, "r17", "top", AisleCold, 20),
		mk(0, "r17", "mid", AisleHot, 40), mk(0, "r17", "mid", AisleCold, 21),
		mk(0, "r18", "top", AisleHot, 25), mk(0, "r18", "top", AisleCold, 19),
		mk(120, "r17", "top", AisleHot, 37), mk(120, "r17", "top", AisleCold, 20),
		// Missing cold reading: dropped.
		mk(120, "r18", "top", AisleHot, 26),
	}
	ds := dataset.FromRows(ctx, "racktemps", rows, s, 2)
	out, err := (&DeriveHeat{}).Apply(ds, dict)
	if err != nil {
		t.Fatal(err)
	}
	sch := out.Schema()
	if _, ok := sch["aisle"]; ok {
		t.Error("aisle should be removed")
	}
	if _, ok := sch["temp"]; ok {
		t.Error("temp should be removed")
	}
	if e := sch["heat"]; e.Dimension != "temperature_difference" || e.Units != "delta_celsius" {
		t.Errorf("heat entry = %v", e)
	}
	got := out.SortedBy("rack", "location", "time")
	if len(got) != 4 {
		t.Fatalf("rows = %d: %v", len(got), got)
	}
	// r17 mid t0: 40-21 = 19.
	if v := got[0].Get("heat").FloatVal(); math.Abs(v-19) > 1e-9 {
		t.Errorf("r17 mid heat = %v", v)
	}
	// r17 top t0: 15, t120: 17.
	if v := got[1].Get("heat").FloatVal(); math.Abs(v-15) > 1e-9 {
		t.Errorf("r17 top heat = %v", v)
	}
	if v := got[2].Get("heat").FloatVal(); math.Abs(v-17) > 1e-9 {
		t.Errorf("r17 top t120 heat = %v", v)
	}
	if err := out.Validate(dict); err != nil {
		t.Errorf("heat dataset invalid: %v", err)
	}
}

func TestDeriveHeatErrors(t *testing.T) {
	dict := semantics.DefaultDictionary()
	noAisle := semantics.NewSchema("temp", semantics.ValueEntry("temperature", "degrees_celsius"))
	if _, err := (&DeriveHeat{}).DeriveSchema(noAisle, dict); err == nil {
		t.Error("missing aisle should fail")
	}
	noTemp := semantics.NewSchema("aisle", semantics.IDDomain("rack_aisle"))
	if _, err := (&DeriveHeat{}).DeriveSchema(noTemp, dict); err == nil {
		t.Error("missing temp should fail")
	}
}

func TestDeriveActiveFrequency(t *testing.T) {
	ctx := rdd.NewContext(1)
	dict := semantics.DefaultDictionary()
	s := semantics.NewSchema(
		"cpu_id", semantics.IDDomain("cpu"),
		"aperf_rate", semantics.ValueEntry("aperf_cycles/time_duration", "count/seconds"),
		"mperf_rate", semantics.ValueEntry("mperf_cycles/time_duration", "count/seconds"),
		"base_frequency", semantics.ValueEntry("frequency", "gigahertz"),
	)
	rows := []value.Row{
		value.NewRow("cpu_id", value.Str("c0"),
			"aperf_rate", value.Float(1.6e9), "mperf_rate", value.Float(3.2e9),
			"base_frequency", value.Float(3.2)),
		value.NewRow("cpu_id", value.Str("c1"),
			"aperf_rate", value.Float(3.2e9), "mperf_rate", value.Float(0),
			"base_frequency", value.Float(3.2)),
	}
	ds := dataset.FromRows(ctx, "papi", rows, s, 1)
	out, err := (&DeriveActiveFrequency{}).Apply(ds, dict)
	if err != nil {
		t.Fatal(err)
	}
	if e := out.Schema()["active_frequency"]; e.Dimension != "active_frequency" || e.Units != "gigahertz" {
		t.Errorf("entry = %v", e)
	}
	got := out.SortedBy("cpu_id")
	// Throttled to half base: 1.6/3.2*3.2 = 1.6 GHz.
	if v := got[0].Get("active_frequency").FloatVal(); math.Abs(v-1.6) > 1e-9 {
		t.Errorf("active freq = %v", v)
	}
	if got[1].Has("active_frequency") {
		t.Error("zero mperf should yield no value")
	}

	// Candidate generation fires on this schema.
	found := false
	for _, c := range Candidates(s, dict, DefaultCandidateOptions()) {
		if c.Name() == "derive_active_frequency" {
			found = true
		}
	}
	if !found {
		t.Error("derive_active_frequency should be a candidate")
	}
}

func TestDeriveActiveFrequencyErrors(t *testing.T) {
	dict := semantics.DefaultDictionary()
	s := semantics.NewSchema(
		"aperf_rate", semantics.ValueEntry("aperf_cycles/time_duration", "count/seconds"),
	)
	if _, err := (&DeriveActiveFrequency{}).DeriveSchema(s, dict); err == nil {
		t.Error("missing mperf/base should fail")
	}
}

func TestDeriveDuration(t *testing.T) {
	ctx := rdd.NewContext(1)
	dict := semantics.DefaultDictionary()
	s := semantics.NewSchema(
		"job_id", semantics.IDDomain("job"),
		"timespan", semantics.SpanDomain(),
	)
	rows := []value.Row{
		value.NewRow("job_id", value.Str("a"), "timespan", value.Span(0, 90e9)),
		value.NewRow("job_id", value.Str("b")),
	}
	ds := dataset.FromRows(ctx, "jobs", rows, s, 1)
	out, err := (&DeriveDuration{}).Apply(ds, dict)
	if err != nil {
		t.Fatal(err)
	}
	e := out.Schema()["timespan_duration"]
	if e.Dimension != "time_duration" || e.Units != "seconds" {
		t.Errorf("entry = %v", e)
	}
	got := out.SortedBy("job_id")
	if v := got[0].Get("timespan_duration").FloatVal(); math.Abs(v-90) > 1e-9 {
		t.Errorf("duration = %v", v)
	}
	if got[1].Has("timespan_duration") {
		t.Error("missing span should yield no duration")
	}
	// The span column remains a domain.
	if _, ok := out.Schema()["timespan"]; !ok {
		t.Error("span column must remain")
	}
	if err := out.Validate(dict); err != nil {
		t.Errorf("result invalid: %v", err)
	}

	// Candidate only when no duration value exists yet.
	found := false
	for _, c := range Candidates(s, dict, DefaultCandidateOptions()) {
		if c.Name() == "derive_duration" {
			found = true
		}
	}
	if !found {
		t.Error("derive_duration should be a candidate for span-only schema")
	}
	withElapsed := s.Clone()
	withElapsed["elapsed"] = semantics.ValueEntry("time_duration", "seconds")
	for _, c := range Candidates(withElapsed, dict, DefaultCandidateOptions()) {
		if c.Name() == "derive_duration" {
			t.Error("derive_duration should not be a candidate when a duration value exists")
		}
	}

	// Errors and registry round trip.
	if _, err := (&DeriveDuration{Column: "job_id"}).DeriveSchema(s, dict); err == nil {
		t.Error("non-span column should fail")
	}
	if _, err := (&DeriveDuration{As: "timespan"}).DeriveSchema(s, dict); err == nil {
		t.Error("existing output name should fail")
	}
	rebuilt, err := NewTransformation("derive_duration", (&DeriveDuration{Column: "timespan", As: "len"}).Params())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rebuilt.DeriveSchema(s, dict); err != nil {
		t.Errorf("rebuilt derive_duration: %v", err)
	}
}
