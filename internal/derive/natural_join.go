package derive

import (
	"fmt"
	"strings"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// joinPair is one shared domain dimension resolved to a concrete column on
// each side.
type joinPair struct {
	Dim      string
	LeftCol  string
	RightCol string
}

// resolveJoinPairs maps every shared domain dimension of two schemas to the
// single domain column carrying it on each side. ScrubJay identifies join
// columns by semantics, not by name (§4.3): a "node" column joins a
// "NODEID" column because both are domains on the compute_node dimension.
func resolveJoinPairs(left, right semantics.Schema) ([]joinPair, error) {
	shared := left.SharedDomainDimensions(right)
	if len(shared) == 0 {
		return nil, fmt.Errorf("derive: no shared domain dimensions between %v and %v",
			left.DomainDimensions(), right.DomainDimensions())
	}
	pairs := make([]joinPair, 0, len(shared))
	for _, dim := range shared {
		lc := left.ColumnsOnDimension(semantics.Domain, dim)
		rc := right.ColumnsOnDimension(semantics.Domain, dim)
		if len(lc) != 1 || len(rc) != 1 {
			return nil, fmt.Errorf("derive: shared dimension %q is ambiguous (%d left, %d right columns)",
				dim, len(lc), len(rc))
		}
		pairs = append(pairs, joinPair{Dim: dim, LeftCol: lc[0], RightCol: rc[0]})
	}
	return pairs, nil
}

// exactMatchable reports whether a join pair's columns can be compared for
// exact equality: identical units, or both scalar units on the same
// dimension (convertible). Structural mismatches (timespan vs datetime,
// list vs scalar) are not exact-matchable — the engine must first explode.
func exactMatchable(p joinPair, left, right semantics.Schema, dict *semantics.Dictionary) bool {
	lu, ru := left[p.LeftCol].Units, right[p.RightCol].Units
	if lu == ru {
		return true
	}
	if lu == "timespan" || ru == "timespan" || lu == "datetime" || ru == "datetime" {
		return false
	}
	if strings.HasPrefix(lu, "list<") || strings.HasPrefix(ru, "list<") {
		return false
	}
	return dict.Units.Convertible(ru, lu)
}

// mergedJoinSchema builds the result schema of a join: left's columns plus
// right's columns, with every right join column dropped — it denotes the
// same entity as its left counterpart, and the left entry (name, units,
// cadence) describes the output.
func mergedJoinSchema(left, right semantics.Schema, pairs []joinPair) (semantics.Schema, error) {
	rs := right.Clone()
	for _, p := range pairs {
		delete(rs, p.RightCol)
	}
	return left.Merge(rs)
}

// joinKey renders the values of the join columns as a canonical composite
// key, converting right-side scalar units to left-side units so that
// semantically equal values key identically.
func joinKey(r value.Row, cols []string, convert []func(value.Value) value.Value) string {
	var b strings.Builder
	for i, c := range cols {
		v := r.Get(c)
		if convert != nil && convert[i] != nil {
			v = convert[i](v)
		}
		b.WriteString(v.String())
		b.WriteByte(0)
	}
	return b.String()
}

// keyedRow pairs a row with its precomputed composite join key.
type keyedRow struct {
	key string
	row value.Row
}

// preKeyRows renders each row's composite join key once, per partition,
// with a partition-local scratch buffer. The shuffle and the co-group both
// consume the stored key, instead of each rebuilding it row by row (the
// key used to be computed twice per row, each time through a fresh
// strings.Builder).
func preKeyRows(rows *rdd.RDD[value.Row], cols []string, convs []func(value.Value) value.Value) *rdd.RDD[keyedRow] {
	return rdd.MapPartitions(rows, func(_ int, in []value.Row) []keyedRow {
		out := make([]keyedRow, len(in))
		scratch := make([]byte, 0, 64)
		for i, r := range in {
			scratch = scratch[:0]
			for j, c := range cols {
				v := r.Get(c)
				if convs != nil && convs[j] != nil {
					v = convs[j](v)
				}
				scratch = append(scratch, v.String()...)
				scratch = append(scratch, 0)
			}
			out[i] = keyedRow{key: string(scratch), row: r}
		}
		return out
	})
}

// NaturalJoin relates two datasets by exact match on every shared domain
// dimension (§4.3, §5.3). It is implemented as a hash shuffle join on the
// data-parallel substrate; with 10 nodes it is the cheaper of the paper's
// two evaluated combinations (Figure 3, left).
type NaturalJoin struct{}

func init() {
	RegisterCombination("natural_join", func(map[string]any) (Combination, error) {
		return &NaturalJoin{}, nil
	})
}

// Name implements Combination.
func (n *NaturalJoin) Name() string { return "natural_join" }

// Params implements Combination.
func (n *NaturalJoin) Params() map[string]any { return map[string]any{} }

// DeriveSchema implements Combination: applicable when the schemas share at
// least one domain dimension and every shared dimension is exact-matchable.
func (n *NaturalJoin) DeriveSchema(left, right semantics.Schema, dict *semantics.Dictionary) (semantics.Schema, error) {
	pairs, err := resolveJoinPairs(left, right)
	if err != nil {
		return nil, err
	}
	for _, p := range pairs {
		if !exactMatchable(p, left, right, dict) {
			return nil, fmt.Errorf("natural_join: shared dimension %q is not exact-matchable (units %q vs %q)",
				p.Dim, left[p.LeftCol].Units, right[p.RightCol].Units)
		}
	}
	return mergedJoinSchema(left, right, pairs)
}

// rightConverters builds per-pair unit converters that bring right-side join
// values into left-side units before keying.
func rightConverters(pairs []joinPair, left, right semantics.Schema, dict *semantics.Dictionary) []func(value.Value) value.Value {
	convs := make([]func(value.Value) value.Value, len(pairs))
	for i, p := range pairs {
		lu, ru := left[p.LeftCol].Units, right[p.RightCol].Units
		if lu == ru {
			continue
		}
		from, to := ru, lu
		u := dict.Units
		convs[i] = func(v value.Value) value.Value {
			f, ok := v.AsFloat()
			if !ok || v.Kind() == value.KindTime {
				return v
			}
			c, err := u.Convert(f, from, to)
			if err != nil {
				return v
			}
			return value.Float(c)
		}
	}
	return convs
}

// Apply implements Combination.
func (n *NaturalJoin) Apply(left, right *dataset.Dataset, dict *semantics.Dictionary) (*dataset.Dataset, error) {
	schema, err := n.DeriveSchema(left.Schema(), right.Schema(), dict)
	if err != nil {
		return nil, err
	}
	pairs, err := resolveJoinPairs(left.Schema(), right.Schema())
	if err != nil {
		return nil, err
	}
	leftCols := make([]string, len(pairs))
	rightCols := make([]string, len(pairs))
	dropRight := make([]string, len(pairs))
	for i, p := range pairs {
		leftCols[i] = p.LeftCol
		rightCols[i] = p.RightCol
		// The right join column always drops: it denotes the same entity
		// as the left's, whose value (and name) the output keeps.
		dropRight[i] = p.RightCol
	}
	convs := rightConverters(pairs, left.Schema(), right.Schema(), dict)
	name := fmt.Sprintf("natural_join(%s,%s)", left.Name(), right.Name())

	if left.IsColumnar() && right.IsColumnar() {
		return joinColumnar(left, right, schema, name, leftCols, rightCols, dropRight, convs), nil
	}

	joined := rdd.JoinHash(
		rdd.WithWire(preKeyRows(left.Rows(), leftCols, nil), keyedRowWire),
		rdd.WithWire(preKeyRows(right.Rows(), rightCols, convs), keyedRowWire),
		func(kr keyedRow) string { return kr.key },
		func(kr keyedRow) string { return kr.key },
	)
	rows := rdd.Map(joined, func(p rdd.Pair[keyedRow, keyedRow]) value.Row {
		r := p.Right.row
		if len(dropRight) > 0 {
			r = r.Clone()
			for _, c := range dropRight {
				delete(r, c)
			}
		}
		return p.Left.row.Merge(r)
	})
	return dataset.New(name, rows.WithName(name), schema), nil
}
