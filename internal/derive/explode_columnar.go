package derive

import (
	"scrubjay/internal/frame"
	"scrubjay/internal/value"
)

// Vectorized explode kernels. Both explodes share a shape: scan the source
// column once collecting (source row, output value) pairs, gather the other
// columns by source index, and attach the output values as one new column —
// a handful of columnar copies instead of a map clone per output row.

// explodeDiscreteFrame explodes one batch's list column into one row per
// element. Rows whose list is null or empty are dropped, as on the row
// path.
func explodeDiscreteFrame(f *frame.Frame, col, out string) *frame.Frame {
	c := f.Col(col)
	var src []int32
	var vals []value.Value
	if c != nil {
		for i := 0; i < f.NumRows(); i++ {
			list := c.Value(i).ListVal()
			for _, elem := range list {
				src = append(src, int32(i))
				vals = append(vals, elem)
			}
		}
	}
	return f.Drop(col).Gather(src).With(frame.ColumnOf(out, vals))
}

// explodeContinuousFrame explodes one batch's timespan column into one row
// per grid-aligned instant. Non-span cells drop the row; a span shorter
// than one period still yields its start instant.
func explodeContinuousFrame(f *frame.Frame, col, out string, periodNanos int64) *frame.Frame {
	c := f.Col(col)
	var src []int32
	var ts []int64
	if c != nil {
		typed := c.Kind() == value.KindSpan
		starts, ends := c.Ints(), c.SpanEnds()
		for i := 0; i < f.NumRows(); i++ {
			var start, end int64
			if typed {
				if !c.Present(i) {
					continue
				}
				start, end = starts[i], ends[i]
			} else {
				v := c.Value(i)
				if v.Kind() != value.KindSpan {
					continue
				}
				start, end = v.SpanBounds()
			}
			first := (start + periodNanos - 1) / periodNanos * periodNanos
			emitted := false
			for t := first; t < end; t += periodNanos {
				src = append(src, int32(i))
				ts = append(ts, t)
				emitted = true
			}
			if !emitted {
				src = append(src, int32(i))
				ts = append(ts, start)
			}
		}
	}
	return f.Drop(col).Gather(src).With(frame.TimeColumn(out, ts))
}
