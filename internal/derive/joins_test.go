package derive

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

func layoutSchema() semantics.Schema {
	return semantics.NewSchema(
		"node", semantics.IDDomain("compute_node"),
		"rack", semantics.IDDomain("rack"),
	)
}

func layoutRows() []value.Row {
	return []value.Row{
		value.NewRow("node", value.Str("n1"), "rack", value.Str("r17")),
		value.NewRow("node", value.Str("n2"), "rack", value.Str("r17")),
		value.NewRow("node", value.Str("n3"), "rack", value.Str("r18")),
	}
}

func TestNaturalJoinSemanticColumnMatching(t *testing.T) {
	ctx := rdd.NewContext(2)
	dict := semantics.DefaultDictionary()
	// Left uses column name "node_id"; right uses "node". They join because
	// both are domains on compute_node.
	ls := semantics.NewSchema(
		"node_id", semantics.IDDomain("compute_node"),
		"temp", semantics.ValueEntry("temperature", "degrees_celsius"),
	)
	lrows := []value.Row{
		value.NewRow("node_id", value.Str("n1"), "temp", value.Float(60)),
		value.NewRow("node_id", value.Str("n3"), "temp", value.Float(70)),
		value.NewRow("node_id", value.Str("nX"), "temp", value.Float(80)),
	}
	left := dataset.FromRows(ctx, "temps", lrows, ls, 2)
	right := dataset.FromRows(ctx, "layout", layoutRows(), layoutSchema(), 1)

	nj := &NaturalJoin{}
	out, err := nj.Apply(left, right, dict)
	if err != nil {
		t.Fatal(err)
	}
	sch := out.Schema()
	if _, ok := sch["node"]; ok {
		t.Error("right join column should be dropped from schema")
	}
	if _, ok := sch["node_id"]; !ok {
		t.Error("left join column kept")
	}
	if _, ok := sch["rack"]; !ok {
		t.Error("right payload column kept")
	}
	rows := out.SortedBy("node_id")
	if len(rows) != 2 {
		t.Fatalf("rows = %d: %v", len(rows), rows)
	}
	if rows[0].Get("rack").StrVal() != "r17" || rows[1].Get("rack").StrVal() != "r18" {
		t.Errorf("join result wrong: %v", rows)
	}
	if rows[0].Has("node") {
		t.Error("right join column should be dropped from rows")
	}
	if err := out.Validate(dict); err != nil {
		t.Errorf("joined dataset invalid: %v", err)
	}
}

func TestNaturalJoinAllSharedDimensionsMustMatch(t *testing.T) {
	// Two CPU measurements at the same time but on different CPUs do not
	// relate (§4.3): join is on (cpu, time), not time alone.
	ctx := rdd.NewContext(1)
	dict := semantics.DefaultDictionary()
	s1 := semantics.NewSchema(
		"cpu", semantics.IDDomain("cpu"),
		"time", semantics.TimeDomain(),
		"ipc", semantics.ValueEntry("instructions/time_duration", "count/seconds"),
	)
	s2 := semantics.NewSchema(
		"cpu_id", semantics.IDDomain("cpu"),
		"ts", semantics.TimeDomain(),
		"faults", semantics.ValueEntry("count", "count"),
	)
	a := dataset.FromRows(ctx, "a", []value.Row{
		value.NewRow("cpu", value.Str("c0"), "time", value.TimeNanos(100), "ipc", value.Float(1)),
		value.NewRow("cpu", value.Str("c1"), "time", value.TimeNanos(100), "ipc", value.Float(2)),
	}, s1, 1)
	b := dataset.FromRows(ctx, "b", []value.Row{
		value.NewRow("cpu_id", value.Str("c0"), "ts", value.TimeNanos(100), "faults", value.Int(5)),
		value.NewRow("cpu_id", value.Str("c1"), "ts", value.TimeNanos(200), "faults", value.Int(9)),
	}, s2, 1)
	out, err := (&NaturalJoin{}).Apply(a, b, dict)
	if err != nil {
		t.Fatal(err)
	}
	rows := out.Collect()
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].Get("cpu").StrVal() != "c0" || rows[0].Get("faults").IntVal() != 5 {
		t.Errorf("row = %v", rows[0])
	}
}

func TestNaturalJoinErrors(t *testing.T) {
	dict := semantics.DefaultDictionary()
	nj := &NaturalJoin{}
	// No shared dimensions.
	a := semantics.NewSchema("x", semantics.IDDomain("cpu"))
	b := semantics.NewSchema("y", semantics.IDDomain("rack"))
	if _, err := nj.DeriveSchema(a, b, dict); err == nil {
		t.Error("no shared dims should fail")
	}
	// Ambiguous dimension (two columns on one side).
	c := semantics.NewSchema("x1", semantics.IDDomain("cpu"), "x2", semantics.IDDomain("cpu"))
	if _, err := nj.DeriveSchema(c, a, dict); err == nil {
		t.Error("ambiguous dimension should fail")
	}
	// Structural mismatch: timespan vs datetime is not exact-matchable.
	d := semantics.NewSchema("span", semantics.SpanDomain())
	e := semantics.NewSchema("t", semantics.TimeDomain())
	if _, err := nj.DeriveSchema(d, e, dict); err == nil {
		t.Error("timespan vs datetime should fail")
	}
	// List vs scalar is not exact-matchable.
	f := semantics.NewSchema("nodes", semantics.IDListDomain("compute_node"))
	g := semantics.NewSchema("node", semantics.IDDomain("compute_node"))
	if _, err := nj.DeriveSchema(f, g, dict); err == nil {
		t.Error("list vs scalar should fail")
	}
	// Conflicting non-join column entries.
	h := semantics.NewSchema("node", semantics.IDDomain("compute_node"),
		"v", semantics.ValueEntry("power", "watts"))
	i := semantics.NewSchema("node", semantics.IDDomain("compute_node"),
		"v", semantics.ValueEntry("power", "kilowatts"))
	if _, err := nj.DeriveSchema(h, i, dict); err == nil {
		t.Error("conflicting column entries should fail")
	}
}

func interpSchemas() (left, right semantics.Schema) {
	left = semantics.NewSchema(
		"node", semantics.IDDomain("compute_node"),
		"t", semantics.TimeDomain(),
		"load", semantics.ValueEntry("fraction", "fraction"),
	)
	right = semantics.NewSchema(
		"node_id", semantics.IDDomain("compute_node"),
		"ts", semantics.TimeDomain(),
		"temp", semantics.ValueEntry("temperature", "degrees_celsius"),
		"status", semantics.ValueEntry("identity", "identifier"),
	)
	return
}

func TestInterpolationJoinBracketsAndInterpolates(t *testing.T) {
	ctx := rdd.NewContext(2)
	dict := semantics.DefaultDictionary()
	ls, rs := interpSchemas()
	lrows := []value.Row{
		value.NewRow("node", value.Str("n1"), "t", value.TimeNanos(10e9), "load", value.Float(0.5)),
		value.NewRow("node", value.Str("n1"), "t", value.TimeNanos(100e9), "load", value.Float(0.9)),
		value.NewRow("node", value.Str("n2"), "t", value.TimeNanos(10e9), "load", value.Float(0.1)),
	}
	rrows := []value.Row{
		value.NewRow("node_id", value.Str("n1"), "ts", value.TimeNanos(8e9), "temp", value.Float(60), "status", value.Str("ok")),
		value.NewRow("node_id", value.Str("n1"), "ts", value.TimeNanos(12e9), "temp", value.Float(70), "status", value.Str("warn")),
		value.NewRow("node_id", value.Str("n2"), "ts", value.TimeNanos(11e9), "temp", value.Float(40), "status", value.Str("ok")),
	}
	left := dataset.FromRows(ctx, "loads", lrows, ls, 2)
	right := dataset.FromRows(ctx, "temps", rrows, rs, 2)

	ij := &InterpolationJoin{WindowSeconds: 5}
	out, err := ij.Apply(left, right, dict)
	if err != nil {
		t.Fatal(err)
	}
	sch := out.Schema()
	for _, dropped := range []string{"node_id", "ts"} {
		if _, ok := sch[dropped]; ok {
			t.Errorf("column %q should be dropped", dropped)
		}
	}
	rows := out.SortedBy("node", "t")
	// n1@10: bracketed by 8 (60,ok) and 12 (70,warn): lerp t=0.5 -> 65;
	// status nearest -> tie between 8 and 12 at distance 2: nearest keeps
	// the before row on ties (dt equal, before wins because after is not
	// strictly closer).
	// n1@100: no right row within 5s -> dropped.
	// n2@10: only 11 within window -> temp 40.
	if len(rows) != 2 {
		t.Fatalf("rows = %d: %v", len(rows), rows)
	}
	if v := rows[0].Get("temp").FloatVal(); math.Abs(v-65) > 1e-9 {
		t.Errorf("interpolated temp = %v, want 65", v)
	}
	if s := rows[0].Get("status").StrVal(); s != "ok" {
		t.Errorf("nearest status = %q", s)
	}
	if v := rows[1].Get("temp").FloatVal(); math.Abs(v-40) > 1e-9 {
		t.Errorf("single-sided temp = %v, want 40", v)
	}
	if err := out.Validate(dict); err != nil {
		t.Errorf("result invalid: %v", err)
	}
}

func TestInterpolationJoinResidualDomains(t *testing.T) {
	// The right side has an unshared domain (location): each left row joins
	// to each location's interpolated reading independently — the Figure 5
	// shape where rack heat has top/mid/bottom locations.
	ctx := rdd.NewContext(2)
	dict := semantics.DefaultDictionary()
	ls := semantics.NewSchema(
		"rack", semantics.IDDomain("rack"),
		"t", semantics.TimeDomain(),
		"job", semantics.ValueEntry("application", "identifier"),
	)
	rs := semantics.NewSchema(
		"rack_id", semantics.IDDomain("rack"),
		"ts", semantics.TimeDomain(),
		"location", semantics.IDDomain("rack_location"),
		"heat", semantics.ValueEntry("temperature_difference", "delta_celsius"),
	)
	lrows := []value.Row{
		value.NewRow("rack", value.Str("r17"), "t", value.TimeNanos(60e9), "job", value.Str("AMG")),
	}
	var rrows []value.Row
	for _, loc := range []string{"top", "mid", "bot"} {
		rrows = append(rrows,
			value.NewRow("rack_id", value.Str("r17"), "ts", value.TimeNanos(0), "location", value.Str(loc), "heat", value.Float(10)),
			value.NewRow("rack_id", value.Str("r17"), "ts", value.TimeNanos(120e9), "location", value.Str(loc), "heat", value.Float(20)),
			value.NewRow("rack_id", value.Str("r18"), "ts", value.TimeNanos(60e9), "location", value.Str(loc), "heat", value.Float(99)),
		)
	}
	left := dataset.FromRows(ctx, "jobs", lrows, ls, 1)
	right := dataset.FromRows(ctx, "heat", rrows, rs, 2)
	out, err := (&InterpolationJoin{WindowSeconds: 120}).Apply(left, right, dict)
	if err != nil {
		t.Fatal(err)
	}
	rows := out.SortedBy("location")
	if len(rows) != 3 {
		t.Fatalf("rows = %d: %v", len(rows), rows)
	}
	for _, r := range rows {
		if v := r.Get("heat").FloatVal(); math.Abs(v-15) > 1e-9 {
			t.Errorf("heat = %v, want 15 (interpolated midpoint)", v)
		}
		if r.Get("rack").StrVal() != "r17" {
			t.Errorf("rack exact match violated: %v", r)
		}
	}
}

func TestInterpolationJoinErrors(t *testing.T) {
	dict := semantics.DefaultDictionary()
	ls, rs := interpSchemas()
	if _, err := (&InterpolationJoin{WindowSeconds: 0}).DeriveSchema(ls, rs, dict); err == nil {
		t.Error("zero window should fail")
	}
	// No time dimension shared.
	a := semantics.NewSchema("node", semantics.IDDomain("compute_node"))
	b := semantics.NewSchema("node_id", semantics.IDDomain("compute_node"))
	if _, err := (&InterpolationJoin{WindowSeconds: 1}).DeriveSchema(a, b, dict); err == nil {
		t.Error("no continuous shared dim should fail")
	}
	// No shared dims at all.
	c := semantics.NewSchema("x", semantics.IDDomain("rack"))
	if _, err := (&InterpolationJoin{WindowSeconds: 1}).DeriveSchema(a, c, dict); err == nil {
		t.Error("no shared dims should fail")
	}
}

// naiveWindowPairs computes, by brute force, the set of (left,right) index
// pairs within the window — the reference for the dual-binning algorithm.
func naiveWindowPairs(lts, rts []int64, w int64) map[[2]int]bool {
	out := map[[2]int]bool{}
	for i, lt := range lts {
		for j, rt := range rts {
			d := lt - rt
			if d < 0 {
				d = -d
			}
			if d <= w {
				out[[2]int{i, j}] = true
			}
		}
	}
	return out
}

func TestInterpJoinBinningFindsAllPairsExactlyOnce(t *testing.T) {
	// Property: the dual-binning candidate generation inside the
	// interpolation join discovers every in-window pair exactly once.
	// We exercise it end to end by joining keyed singletons: each left row
	// has a unique id value column; each right row a unique value; the
	// number of output rows per left row equals the number of residual
	// groups, so instead we count candidates via a 1-residual-group setup
	// and compare the set of (left,right) nearest matches against the
	// naive reference for several random instances.
	rng := rand.New(rand.NewSource(42))
	dict := semantics.DefaultDictionary()
	for trial := 0; trial < 20; trial++ {
		nl, nr := 1+rng.Intn(30), 1+rng.Intn(30)
		w := int64(1+rng.Intn(20)) * 1e9
		lts := make([]int64, nl)
		rts := make([]int64, nr)
		for i := range lts {
			lts[i] = int64(rng.Intn(200)) * 1e9
		}
		for j := range rts {
			rts[j] = int64(rng.Intn(200)) * 1e9
		}
		want := naiveWindowPairs(lts, rts, w)

		// Each right row gets a unique residual domain value, so every
		// candidate pair becomes exactly one output row.
		ctx := rdd.NewContext(2)
		ls := semantics.NewSchema(
			"t", semantics.TimeDomain(),
			"lid", semantics.ValueEntry("identity", "identifier"),
		)
		rs := semantics.NewSchema(
			"ts", semantics.TimeDomain(),
			"rid", semantics.IDDomain("cluster"), // residual domain
		)
		lrows := make([]value.Row, nl)
		for i := range lrows {
			lrows[i] = value.NewRow("t", value.TimeNanos(lts[i]), "lid", value.Str(fmt.Sprintf("L%d", i)))
		}
		rrows := make([]value.Row, nr)
		for j := range rrows {
			rrows[j] = value.NewRow("ts", value.TimeNanos(rts[j]), "rid", value.Str(fmt.Sprintf("R%d", j)))
		}
		left := dataset.FromRows(ctx, "l", lrows, ls, 3)
		right := dataset.FromRows(ctx, "r", rrows, rs, 3)
		out, err := (&InterpolationJoin{WindowSeconds: float64(w) / 1e9}).Apply(left, right, dict)
		if err != nil {
			t.Fatal(err)
		}
		got := map[[2]int]bool{}
		for _, r := range out.Collect() {
			var li, rj int
			fmt.Sscanf(r.Get("lid").StrVal(), "L%d", &li)
			fmt.Sscanf(r.Get("rid").StrVal(), "R%d", &rj)
			key := [2]int{li, rj}
			if got[key] {
				t.Fatalf("trial %d: duplicate output pair %v", trial, key)
			}
			got[key] = true
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (w=%ds): got %d pairs, want %d", trial, w/1e9, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: missing pair %v", trial, k)
			}
		}
	}
}

func TestCombinationRegistryRoundTrip(t *testing.T) {
	nj, err := NewCombination("natural_join", map[string]any{})
	if err != nil || nj.Name() != "natural_join" {
		t.Errorf("natural_join: %v", err)
	}
	ij, err := NewCombination("interpolation_join", map[string]any{"window_seconds": 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := ij.Params()["window_seconds"]; got != 2.5 {
		t.Errorf("window = %v", got)
	}
	if _, err := NewCombination("bogus", nil); err == nil {
		t.Error("unknown combination should fail")
	}
	if _, err := NewTransformation("bogus", nil); err == nil {
		t.Error("unknown transformation should fail")
	}
	if _, err := NewCombination("interpolation_join", map[string]any{}); err == nil {
		t.Error("missing window should fail")
	}
}

func TestRegistryNamesListed(t *testing.T) {
	tn := TransformationNames()
	cn := CombinationNames()
	wantT := []string{"convert_units", "derive_active_frequency", "derive_heat", "derive_rate", "derive_ratio", "explode_continuous", "explode_discrete"}
	if !sort.StringsAreSorted(tn) || !sort.StringsAreSorted(cn) {
		t.Error("registry name lists should be sorted")
	}
	has := func(xs []string, w string) bool {
		for _, x := range xs {
			if x == w {
				return true
			}
		}
		return false
	}
	for _, w := range wantT {
		if !has(tn, w) {
			t.Errorf("TransformationNames missing %q: %v", w, tn)
		}
	}
	for _, w := range []string{"natural_join", "interpolation_join"} {
		if !has(cn, w) {
			t.Errorf("CombinationNames missing %q: %v", w, cn)
		}
	}
}
