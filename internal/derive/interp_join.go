package derive

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// InterpolationJoin relates two datasets over a shared ordered, continuous
// domain (time) whose recordings do not match exactly — the paper's novel
// data-parallel algorithm (§5.3). Correspondences are restricted to pairs
// within a window W. Each dataset is binned twice into bins of width 2W,
// the second binning offset by exactly W; any two instants within W of each
// other share a bin in at least one binning, so candidate pairs are found
// with local work only — no global sort, no pairwise distance matrix. Pairs
// whose instants share a first-binning bin are emitted there; all other
// in-window pairs are emitted from the offset binning, so no pair is
// produced twice.
//
// Every other shared domain dimension must match exactly, and right-side
// rows are grouped by their remaining (unshared) domain columns; per group
// the right-side values bracketing the left instant are linearly
// interpolated (ordered values) or taken from the nearest row (unordered
// values), implementing the paper's semantics-driven aggregation.
type InterpolationJoin struct {
	// WindowSeconds is the correspondence window W.
	WindowSeconds float64
}

func init() {
	RegisterCombination("interpolation_join", func(p map[string]any) (Combination, error) {
		w, err := paramFloat(p, "window_seconds")
		if err != nil {
			return nil, err
		}
		return &InterpolationJoin{WindowSeconds: w}, nil
	})
}

// Name implements Combination.
func (j *InterpolationJoin) Name() string { return "interpolation_join" }

// Params implements Combination.
func (j *InterpolationJoin) Params() map[string]any {
	return map[string]any{"window_seconds": j.WindowSeconds}
}

// resolveInterp splits the shared domain dimensions into the single
// interpolated (ordered continuous, datetime-valued) pair and the
// exact-match pairs.
func (j *InterpolationJoin) resolveInterp(left, right semantics.Schema, dict *semantics.Dictionary) (timePair joinPair, exact []joinPair, err error) {
	pairs, err := resolveJoinPairs(left, right)
	if err != nil {
		return joinPair{}, nil, err
	}
	found := false
	for _, p := range pairs {
		dim, ok := dict.LookupDimension(p.Dim)
		if ok && dim.Ordered && dim.Continuous &&
			left[p.LeftCol].Units == "datetime" && right[p.RightCol].Units == "datetime" {
			if found {
				return joinPair{}, nil, fmt.Errorf("interpolation_join: more than one interpolable shared dimension")
			}
			timePair, found = p, true
			continue
		}
		if !exactMatchable(p, left, right, dict) {
			return joinPair{}, nil, fmt.Errorf("interpolation_join: shared dimension %q is not exact-matchable", p.Dim)
		}
		exact = append(exact, p)
	}
	if !found {
		return joinPair{}, nil, fmt.Errorf("interpolation_join: no shared ordered continuous (datetime) dimension")
	}
	return timePair, exact, nil
}

// DeriveSchema implements Combination.
func (j *InterpolationJoin) DeriveSchema(left, right semantics.Schema, dict *semantics.Dictionary) (semantics.Schema, error) {
	if j.WindowSeconds <= 0 {
		return nil, fmt.Errorf("interpolation_join: window must be positive, got %v", j.WindowSeconds)
	}
	timePair, exact, err := j.resolveInterp(left, right, dict)
	if err != nil {
		return nil, err
	}
	return mergedJoinSchema(left, right, append(exact, timePair))
}

// floorDiv divides rounding toward negative infinity, so binning behaves
// for pre-epoch timestamps too.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

type interpTagged struct {
	key  string
	id   int64 // left rows only: unique id for regrouping
	t    int64 // instant, unix nanos
	binA int64 // first-binning index, for pair dedup
	row  value.Row
}

type interpCand struct {
	id   int64
	lrow value.Row
	lt   int64
	rrow value.Row
	rt   int64
}

// Apply implements Combination.
func (j *InterpolationJoin) Apply(left, right *dataset.Dataset, dict *semantics.Dictionary) (*dataset.Dataset, error) {
	schema, err := j.DeriveSchema(left.Schema(), right.Schema(), dict)
	if err != nil {
		return nil, err
	}
	timePair, exact, err := j.resolveInterp(left.Schema(), right.Schema(), dict)
	if err != nil {
		return nil, err
	}
	w := int64(j.WindowSeconds * 1e9)
	leftExact := make([]string, len(exact))
	rightExact := make([]string, len(exact))
	for i, p := range exact {
		leftExact[i] = p.LeftCol
		rightExact[i] = p.RightCol
	}
	convs := rightConverters(exact, left.Schema(), right.Schema(), dict)

	// Right-side join columns always drop from merged rows: they denote
	// the same entity as the left's. In particular the probe row's instant
	// survives, not the matched right sample's.
	var dropRight []string
	for _, p := range append(exact, timePair) {
		dropRight = append(dropRight, p.RightCol)
	}
	// Right-side residual domain columns: unshared domains (e.g. a sensor
	// location). Per left row, interpolation happens independently within
	// each residual combination.
	var rightResidual []string
	{
		sharedRight := map[string]bool{timePair.RightCol: true}
		for _, p := range exact {
			sharedRight[p.RightCol] = true
		}
		for _, c := range right.Schema().DomainColumns() {
			if !sharedRight[c] {
				rightResidual = append(rightResidual, c)
			}
		}
	}
	// Right value columns partition into interpolable (ordered dimension)
	// and nearest-only.
	var lerpCols, nearestCols []string
	for _, c := range right.Schema().ValueColumns() {
		dim, ok := dict.LookupDimension(right.Schema()[c].Dimension)
		if ok && dim.Ordered {
			lerpCols = append(lerpCols, c)
		} else {
			nearestCols = append(nearestCols, c)
		}
	}

	ltCol, rtCol := timePair.LeftCol, timePair.RightCol
	name := fmt.Sprintf("interpolation_join(%s,%s)", left.Name(), right.Name())

	if left.IsColumnar() && right.IsColumnar() {
		cands := interpCandidatesColumnar(left, right, ltCol, rtCol, leftExact, rightExact, convs, w)
		rows := interpAssembleColumnar(cands, rightResidual, lerpCols, nearestCols, dropRight)
		return dataset.New(name, rows.WithName(name), schema).Columnar(), nil
	}

	// Tag left rows with unique ids and both bin keys.
	tagBoth := func(exKey string, t int64) (keyA, keyB string, binA int64) {
		binA = floorDiv(t, 2*w)
		binB := floorDiv(t+w, 2*w)
		return exKey + "|A" + strconv.FormatInt(binA, 10),
			exKey + "|B" + strconv.FormatInt(binB, 10),
			binA
	}
	leftTagged := rdd.MapPartitions(left.Rows(), func(part int, in []value.Row) []interpTagged {
		out := make([]interpTagged, 0, 2*len(in))
		for i, r := range in {
			tv := r.Get(ltCol)
			if tv.Kind() != value.KindTime {
				continue
			}
			t := tv.TimeNanosVal()
			id := int64(part)<<40 | int64(i)
			exKey := joinKey(r, leftExact, nil)
			ka, kb, binA := tagBoth(exKey, t)
			out = append(out,
				interpTagged{key: ka, id: id, t: t, binA: binA, row: r},
				interpTagged{key: kb, id: id, t: t, binA: binA, row: r})
		}
		return out
	}).WithName(left.Name() + "|interp-tag")

	rightTagged := rdd.FlatMap(right.Rows(), func(r value.Row) []interpTagged {
		tv := r.Get(rtCol)
		if tv.Kind() != value.KindTime {
			return nil
		}
		t := tv.TimeNanosVal()
		exKey := joinKey(r, rightExact, convs)
		ka, kb, binA := tagBoth(exKey, t)
		return []interpTagged{
			{key: ka, t: t, binA: binA, row: r},
			{key: kb, t: t, binA: binA, row: r},
		}
	}).WithName(right.Name() + "|interp-tag")

	cog := rdd.CoGroup(rdd.WithWire(leftTagged, interpTaggedWire), rdd.WithWire(rightTagged, interpTaggedWire),
		func(e interpTagged) string { return e.key },
		func(e interpTagged) string { return e.key })

	cands := rdd.FlatMap(cog, func(g rdd.CoGrouped[interpTagged, interpTagged]) []interpCand {
		if len(g.Left) == 0 || len(g.Right) == 0 {
			return nil
		}
		// The bin tag is the suffix "|A<idx>" or "|B<idx>" appended by
		// tagBoth; the byte after the last '|' identifies the binning.
		tagAt := strings.LastIndexByte(g.Key, '|')
		offsetBin := tagAt >= 0 && tagAt+1 < len(g.Key) && g.Key[tagAt+1] == 'B'
		var out []interpCand
		for _, l := range g.Left {
			for _, r := range g.Right {
				dt := l.t - r.t
				if dt < 0 {
					dt = -dt
				}
				if dt > w {
					continue
				}
				// Dedup: pairs sharing a first-binning bin are emitted
				// there; the offset binning emits only the rest.
				if offsetBin && l.binA == r.binA {
					continue
				}
				out = append(out, interpCand{id: l.id, lrow: l.row, lt: l.t, rrow: r.row, rt: r.t})
			}
		}
		return out
	}).WithName("interp-candidates")

	rows := interpAssemble(cands, rightResidual, lerpCols, nearestCols, dropRight)
	return dataset.New(name, rows.WithName(name), schema), nil
}

// interpAssemble is the downstream half of the interpolation join on the
// row path: candidates regroup by their left row's id, split by the right
// side's residual domain columns, and each residual group interpolates into
// one output row.
func interpAssemble(cands *rdd.RDD[interpCand], rightResidual, lerpCols, nearestCols, dropRight []string) *rdd.RDD[value.Row] {
	perLeft := rdd.GroupByKey(rdd.WithWire(cands, interpCandWire), func(c interpCand) string {
		return strconv.FormatInt(c.id, 10)
	})
	return rdd.FlatMap(perLeft, func(g rdd.Group[interpCand]) []value.Row {
		return assembleLeftGroup(g.Items, rightResidual, lerpCols, nearestCols, dropRight)
	})
}

// assembleLeftGroup turns one left row's candidates into output rows: one
// per right-residual combination, in sorted residual-key order. Shared by
// the row and columnar assemble stages so both emit identical rows.
func assembleLeftGroup(cs []interpCand, rightResidual, lerpCols, nearestCols, dropRight []string) []value.Row {
	if len(rightResidual) == 0 {
		return []value.Row{interpolateCandidates(cs, lerpCols, nearestCols, dropRight)}
	}
	byResidual := make(map[string][]interpCand)
	for _, c := range cs {
		k := joinKey(c.rrow, rightResidual, nil)
		byResidual[k] = append(byResidual[k], c)
	}
	keys := make([]string, 0, len(byResidual))
	for k := range byResidual {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]value.Row, 0, len(keys))
	for _, k := range keys {
		out = append(out, interpolateCandidates(byResidual[k], lerpCols, nearestCols, dropRight))
	}
	return out
}

// interpolateCandidates merges one left row with the right rows of one
// residual group: the nearest right rows before and after the left instant
// bracket it; ordered value columns interpolate linearly, unordered ones
// take the nearest reading.
func interpolateCandidates(cs []interpCand, lerpCols, nearestCols, dropRight []string) value.Row {
	lt := cs[0].lt
	var before, after *interpCand
	for i := range cs {
		c := &cs[i]
		if c.rt <= lt {
			if before == nil || c.rt > before.rt {
				before = c
			}
		}
		if c.rt >= lt {
			if after == nil || c.rt < after.rt {
				after = c
			}
		}
	}
	nearest := before
	if nearest == nil || (after != nil && after.rt-lt < lt-nearest.rt) {
		nearest = after
	}
	base := nearest.rrow.Clone()
	if before != nil && after != nil && before.rt != after.rt {
		t := float64(lt-before.rt) / float64(after.rt-before.rt)
		for _, c := range lerpCols {
			bv, av := before.rrow.Get(c), after.rrow.Get(c)
			switch {
			case bv.IsNull():
				base[c] = av
			case av.IsNull():
				base[c] = bv
			default:
				base[c] = value.Lerp(bv, av, t)
			}
		}
	} else if before != nil || after != nil {
		src := before
		if src == nil {
			src = after
		}
		for _, c := range lerpCols {
			base[c] = src.rrow.Get(c)
		}
	}
	for _, c := range nearestCols {
		base[c] = nearest.rrow.Get(c)
	}
	for _, c := range dropRight {
		delete(base, c)
	}
	return cs[0].lrow.Merge(base)
}
