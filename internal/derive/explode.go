package derive

import (
	"fmt"

	"scrubjay/internal/dataset"
	"scrubjay/internal/frame"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/units"
	"scrubjay/internal/value"
)

// ExplodeDiscrete denormalizes a domain column holding a list into one row
// per element (§7.1 "explode discrete"): a job-queue row with
// nodelist=[n1,n2] becomes two rows, one per node. The exploded column makes
// the dataset joinable with datasets keyed on single identifiers.
type ExplodeDiscrete struct {
	// Column is the list-valued domain column to explode.
	Column string
	// As names the output column; defaults to Column+"_exploded",
	// following the paper's Figure 5.
	As string
}

func init() {
	RegisterTransformation("explode_discrete", func(p map[string]any) (Transformation, error) {
		col, err := paramString(p, "column")
		if err != nil {
			return nil, err
		}
		as, err := paramStringDefault(p, "as", "")
		if err != nil {
			return nil, err
		}
		return &ExplodeDiscrete{Column: col, As: as}, nil
	})
	registerCandidateGenerator(func(s semantics.Schema, dict *semantics.Dictionary, _ CandidateOptions) []Transformation {
		var out []Transformation
		for _, col := range s.DomainColumns() {
			if _, ok := units.IsList(s[col].Units); ok {
				out = append(out, &ExplodeDiscrete{Column: col})
			}
		}
		return out
	})
}

// Name implements Transformation.
func (e *ExplodeDiscrete) Name() string { return "explode_discrete" }

// Params implements Transformation.
func (e *ExplodeDiscrete) Params() map[string]any {
	p := map[string]any{"column": e.Column}
	if e.As != "" {
		p["as"] = e.As
	}
	return p
}

func (e *ExplodeDiscrete) out() string {
	if e.As != "" {
		return e.As
	}
	return e.Column + "_exploded"
}

// DeriveSchema implements Transformation: the list column is replaced by a
// scalar column with the list's element units.
func (e *ExplodeDiscrete) DeriveSchema(in semantics.Schema, dict *semantics.Dictionary) (semantics.Schema, error) {
	entry, ok := in[e.Column]
	if !ok {
		return nil, fmt.Errorf("explode_discrete: no column %q", e.Column)
	}
	if entry.Relation != semantics.Domain {
		return nil, fmt.Errorf("explode_discrete: column %q is not a domain", e.Column)
	}
	elem, isList := units.IsList(entry.Units)
	if !isList {
		return nil, fmt.Errorf("explode_discrete: column %q units %q are not a list", e.Column, entry.Units)
	}
	if _, exists := in[e.out()]; exists {
		return nil, fmt.Errorf("explode_discrete: output column %q already exists", e.out())
	}
	out := in.Clone()
	delete(out, e.Column)
	out[e.out()] = semantics.Entry{Relation: semantics.Domain, Dimension: entry.Dimension, Units: elem}
	return out, nil
}

// Apply implements Transformation. Rows whose list column is null or empty
// are dropped: a measurement with no domain elements cannot be attributed.
func (e *ExplodeDiscrete) Apply(in *dataset.Dataset, dict *semantics.Dictionary) (*dataset.Dataset, error) {
	schema, err := e.DeriveSchema(in.Schema(), dict)
	if err != nil {
		return nil, err
	}
	col, out := e.Column, e.out()
	name := in.Name() + "|explode_discrete(" + col + ")"
	if in.IsColumnar() {
		frames := rdd.Map(in.Frames(), func(f *frame.Frame) *frame.Frame {
			return explodeDiscreteFrame(f, col, out)
		})
		return dataset.NewFrames(name, frames.WithName(name), schema), nil
	}
	rows := rdd.FlatMap(in.Rows(), func(r value.Row) []value.Row {
		list := r.Get(col).ListVal()
		if len(list) == 0 {
			return nil
		}
		res := make([]value.Row, len(list))
		for i, elem := range list {
			nr := r.Without(col)
			nr[out] = elem
			res[i] = nr
		}
		return res
	})
	return dataset.New(name, rows.WithName(name), schema), nil
}

// ExplodeContinuous denormalizes a timespan domain column into one row per
// discrete instant within the span (§7.1 "explode continuous"), at a fixed
// period aligned to the period grid so instants from different rows
// coincide exactly.
type ExplodeContinuous struct {
	// Column is the timespan domain column to explode.
	Column string
	// As names the output column; defaults to Column+"_exploded".
	As string
	// PeriodSeconds is the sampling period.
	PeriodSeconds float64
}

func init() {
	RegisterTransformation("explode_continuous", func(p map[string]any) (Transformation, error) {
		col, err := paramString(p, "column")
		if err != nil {
			return nil, err
		}
		as, err := paramStringDefault(p, "as", "")
		if err != nil {
			return nil, err
		}
		period, err := paramFloat(p, "period_seconds")
		if err != nil {
			return nil, err
		}
		return &ExplodeContinuous{Column: col, As: as, PeriodSeconds: period}, nil
	})
	registerCandidateGenerator(func(s semantics.Schema, dict *semantics.Dictionary, opts CandidateOptions) []Transformation {
		var out []Transformation
		for _, col := range s.DomainColumns() {
			if s[col].Units == "timespan" {
				out = append(out, &ExplodeContinuous{Column: col, PeriodSeconds: opts.ExplodePeriodSeconds})
			}
		}
		return out
	})
}

// Name implements Transformation.
func (e *ExplodeContinuous) Name() string { return "explode_continuous" }

// Params implements Transformation.
func (e *ExplodeContinuous) Params() map[string]any {
	p := map[string]any{"column": e.Column, "period_seconds": e.PeriodSeconds}
	if e.As != "" {
		p["as"] = e.As
	}
	return p
}

func (e *ExplodeContinuous) out() string {
	if e.As != "" {
		return e.As
	}
	return e.Column + "_exploded"
}

// DeriveSchema implements Transformation: timespan units become datetime.
func (e *ExplodeContinuous) DeriveSchema(in semantics.Schema, dict *semantics.Dictionary) (semantics.Schema, error) {
	entry, ok := in[e.Column]
	if !ok {
		return nil, fmt.Errorf("explode_continuous: no column %q", e.Column)
	}
	if entry.Relation != semantics.Domain || entry.Units != "timespan" {
		return nil, fmt.Errorf("explode_continuous: column %q is not a timespan domain", e.Column)
	}
	if e.PeriodSeconds <= 0 {
		return nil, fmt.Errorf("explode_continuous: period must be positive, got %v", e.PeriodSeconds)
	}
	if _, exists := in[e.out()]; exists {
		return nil, fmt.Errorf("explode_continuous: output column %q already exists", e.out())
	}
	out := in.Clone()
	delete(out, e.Column)
	out[e.out()] = semantics.Entry{
		Relation:  semantics.Domain,
		Dimension: entry.Dimension,
		Units:     "datetime",
		// The exploded instants recur at exactly the explode period.
		CadenceSeconds: e.PeriodSeconds,
	}
	return out, nil
}

// Apply implements Transformation. Instants are aligned to multiples of the
// period; a span shorter than one period still yields its start instant, so
// no row vanishes entirely.
func (e *ExplodeContinuous) Apply(in *dataset.Dataset, dict *semantics.Dictionary) (*dataset.Dataset, error) {
	schema, err := e.DeriveSchema(in.Schema(), dict)
	if err != nil {
		return nil, err
	}
	col, out := e.Column, e.out()
	periodNanos := int64(e.PeriodSeconds * 1e9)
	name := in.Name() + "|explode_continuous(" + col + ")"
	if in.IsColumnar() {
		frames := rdd.Map(in.Frames(), func(f *frame.Frame) *frame.Frame {
			return explodeContinuousFrame(f, col, out, periodNanos)
		})
		return dataset.NewFrames(name, frames.WithName(name), schema), nil
	}
	rows := rdd.FlatMap(in.Rows(), func(r value.Row) []value.Row {
		v := r.Get(col)
		if v.Kind() != value.KindSpan {
			return nil
		}
		start, end := v.SpanBounds()
		// First grid-aligned instant at or after start.
		first := (start + periodNanos - 1) / periodNanos * periodNanos
		var res []value.Row
		for t := first; t < end; t += periodNanos {
			nr := r.Without(col)
			nr[out] = value.TimeNanos(t)
			res = append(res, nr)
		}
		if len(res) == 0 {
			nr := r.Without(col)
			nr[out] = value.TimeNanos(start)
			res = append(res, nr)
		}
		return res
	})
	return dataset.New(name, rows.WithName(name), schema), nil
}
