package derive

import (
	"fmt"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// DeriveDuration computes an elapsed-time value column from a timespan
// domain column — the paper's observation that "the elapsed time of an
// application execution also constitutes a measurement, and therefore a
// value" (§4.2): the span is a domain, its length is a value.
type DeriveDuration struct {
	// Column is the timespan domain column; "" autodetects a single one.
	Column string
	// As names the output column; defaults to Column+"_duration".
	As string
}

func init() {
	RegisterTransformation("derive_duration", func(p map[string]any) (Transformation, error) {
		col, err := paramStringDefault(p, "column", "")
		if err != nil {
			return nil, err
		}
		as, err := paramStringDefault(p, "as", "")
		if err != nil {
			return nil, err
		}
		return &DeriveDuration{Column: col, As: as}, nil
	})
	registerCandidateGenerator(func(s semantics.Schema, dict *semantics.Dictionary, _ CandidateOptions) []Transformation {
		// Useful only when the dataset has a span but no duration value
		// yet; otherwise it adds noise to the closure.
		if s.HasValueDimension("time_duration") {
			return nil
		}
		d := &DeriveDuration{}
		if _, err := d.resolve(s); err == nil {
			return []Transformation{d}
		}
		return nil
	})
}

// Name implements Transformation.
func (d *DeriveDuration) Name() string { return "derive_duration" }

// Params implements Transformation.
func (d *DeriveDuration) Params() map[string]any {
	p := map[string]any{}
	if d.Column != "" {
		p["column"] = d.Column
	}
	if d.As != "" {
		p["as"] = d.As
	}
	return p
}

func (d *DeriveDuration) resolve(in semantics.Schema) (string, error) {
	if d.Column != "" {
		e, ok := in[d.Column]
		if !ok || e.Relation != semantics.Domain || e.Units != "timespan" {
			return "", fmt.Errorf("derive_duration: column %q is not a timespan domain", d.Column)
		}
		return d.Column, nil
	}
	var spans []string
	for _, c := range in.DomainColumns() {
		if in[c].Units == "timespan" {
			spans = append(spans, c)
		}
	}
	if len(spans) != 1 {
		return "", fmt.Errorf("derive_duration: need exactly one timespan domain column, found %d", len(spans))
	}
	return spans[0], nil
}

func (d *DeriveDuration) out(col string) string {
	if d.As != "" {
		return d.As
	}
	return col + "_duration"
}

// DeriveSchema implements Transformation: adds a time_duration value in
// seconds; the span column remains (it is still the domain).
func (d *DeriveDuration) DeriveSchema(in semantics.Schema, dict *semantics.Dictionary) (semantics.Schema, error) {
	col, err := d.resolve(in)
	if err != nil {
		return nil, err
	}
	outCol := d.out(col)
	if _, exists := in[outCol]; exists {
		return nil, fmt.Errorf("derive_duration: output column %q already exists", outCol)
	}
	out := in.Clone()
	out[outCol] = semantics.ValueEntry("time_duration", "seconds")
	return out, nil
}

// Apply implements Transformation. Rows without a span get no duration.
func (d *DeriveDuration) Apply(in *dataset.Dataset, dict *semantics.Dictionary) (*dataset.Dataset, error) {
	schema, err := d.DeriveSchema(in.Schema(), dict)
	if err != nil {
		return nil, err
	}
	col, err := d.resolve(in.Schema())
	if err != nil {
		return nil, err
	}
	outCol := d.out(col)
	rows := rdd.Map(in.Rows(), func(r value.Row) value.Row {
		v := r.Get(col)
		if v.Kind() != value.KindSpan {
			return r
		}
		return r.With(outCol, value.Float(float64(v.SpanDurationNanos())/1e9))
	})
	name := in.Name() + "|derive_duration"
	return matchRepr(in, dataset.New(name, rows.WithName(name), schema)), nil
}
