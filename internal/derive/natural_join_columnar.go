package derive

import (
	"scrubjay/internal/dataset"
	"scrubjay/internal/frame"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// joinColumnar is the vectorized natural join. Both sides' batches are
// hash-exchanged on their join columns' hash vectors, then each aligned
// partition pair is joined batch-wise: left rows are grouped by verified
// key (first-seen order, mirroring the row path's co-group), right rows
// probe those groups, and the matching row pairs are materialized with two
// column-wise gathers and a frame merge — no per-row maps, no per-row key
// strings.
func joinColumnar(left, right *dataset.Dataset, schema semantics.Schema, name string,
	leftCols, rightCols, dropRight []string, convs []func(value.Value) value.Value) *dataset.Dataset {

	lparts := left.Frames().NumPartitions()
	rparts := right.Frames().NumPartitions()
	numOut := lparts
	if rparts > numOut {
		numOut = rparts
	}
	lex := hashExchange(left.Frames(), leftCols, nil, numOut, name+"|left")
	rex := hashExchange(right.Frames(), rightCols, convs, numOut, name+"|right")

	frames := rdd.ZipPartitions(lex, rex, func(_ int, ls, rs []keyedFrame) []*frame.Frame {
		lf, lh := concatKeyed(ls)
		rf, rh := concatKeyed(rs)
		if lf.NumRows() == 0 || rf.NumRows() == 0 {
			return framesOf(frame.Empty())
		}
		lIdx := colIndexes(lf, leftCols)
		rIdx := colIndexes(rf, rightCols)

		// Group left rows by join key in first-seen order. Buckets hold
		// group ids; a bucket with several ids means a hash collision,
		// disambiguated by ValuesEqualOn against each group's first row.
		type group struct {
			lrows []int32
			rrows []int32
		}
		var groups []group
		buckets := make(map[uint64][]int32, lf.NumRows())
		for i := 0; i < lf.NumRows(); i++ {
			gid := int32(-1)
			for _, g := range buckets[lh[i]] {
				if frame.ValuesEqualOn(lf, i, lIdx, lf, int(groups[g].lrows[0]), lIdx, nil) {
					gid = g
					break
				}
			}
			if gid < 0 {
				gid = int32(len(groups))
				groups = append(groups, group{})
				buckets[lh[i]] = append(buckets[lh[i]], gid)
			}
			groups[gid].lrows = append(groups[gid].lrows, int32(i))
		}
		// Probe with right rows; convs rescales right units before the
		// comparison, exactly as the row path keys do.
		for j := 0; j < rf.NumRows(); j++ {
			for _, g := range buckets[rh[j]] {
				if frame.ValuesEqualOn(lf, int(groups[g].lrows[0]), lIdx, rf, j, rIdx, convs) {
					groups[g].rrows = append(groups[g].rrows, int32(j))
					break
				}
			}
		}
		// Emit matched pairs group-major (the row path's co-group order):
		// every left row of a key crossed with every right row of the key.
		var n int
		for _, g := range groups {
			n += len(g.lrows) * len(g.rrows)
		}
		lsel := make([]int32, 0, n)
		rsel := make([]int32, 0, n)
		for _, g := range groups {
			if len(g.rrows) == 0 {
				continue
			}
			for _, l := range g.lrows {
				for _, r := range g.rrows {
					lsel = append(lsel, l)
					rsel = append(rsel, r)
				}
			}
		}
		out := frame.Merge(lf.Gather(lsel), rf.Drop(dropRight...).Gather(rsel))
		return framesOf(out)
	})
	return dataset.NewFrames(name, frames.WithName(name), schema)
}
