package derive

import (
	"scrubjay/internal/dataset"
	"scrubjay/internal/frame"
	"scrubjay/internal/rdd"
	"scrubjay/internal/value"
)

// Shared plumbing for the vectorized kernels. The columnar operators key
// batches on per-column hash vectors (frame.HashOn) instead of per-row key
// strings: one pass per key column over a dense vector replaces a
// strings.Builder round trip per row. Hashes route rows between
// partitions and bucket them inside one; every hash match is verified with
// frame.ValuesEqualOn before it influences a result, so collisions cannot
// change answers.

// keyedFrame is a batch traveling through a hash exchange together with
// its rows' composite key hashes.
type keyedFrame struct {
	f *frame.Frame
	h []uint64
}

// hashExchange computes each row's composite key hash over cols (convs
// converts values before hashing, as the join does for right-side units)
// and redistributes batch slices so equal hashes land in one of numOut
// partitions. Batches arrive at each destination in source-partition
// order, matching the row-level shuffle's ordering contract.
func hashExchange(frames *rdd.RDD[*frame.Frame], cols []string, convs []func(value.Value) value.Value, numOut int, stage string) *rdd.RDD[keyedFrame] {
	keyed := rdd.WithWire(rdd.Map(frames, func(f *frame.Frame) keyedFrame {
		return keyedFrame{f: f, h: f.HashOn(cols, convs)}
	}), keyedFrameWire)
	return rdd.ExchangePartitions(keyed, numOut, stage, func(_ int, in []keyedFrame) [][]keyedFrame {
		out := make([][]keyedFrame, numOut)
		if numOut == 1 {
			out[0] = in
			return out
		}
		for _, kf := range in {
			idx := make([][]int32, numOut)
			for i, h := range kf.h {
				d := int(h % uint64(numOut))
				idx[d] = append(idx[d], int32(i))
			}
			for d, ix := range idx {
				if len(ix) == 0 {
					continue
				}
				hh := make([]uint64, len(ix))
				for k, s := range ix {
					hh[k] = kf.h[s]
				}
				out[d] = append(out[d], keyedFrame{f: kf.f.Gather(ix), h: hh})
			}
		}
		return out
	}, func(kf keyedFrame) int64 { return int64(kf.f.NumRows()) })
}

// concatKeyed flattens one partition's batches into a single frame and
// hash vector.
func concatKeyed(kfs []keyedFrame) (*frame.Frame, []uint64) {
	if len(kfs) == 1 {
		return kfs[0].f, kfs[0].h
	}
	fs := make([]*frame.Frame, len(kfs))
	n := 0
	for i, kf := range kfs {
		fs[i] = kf.f
		n += kf.f.NumRows()
	}
	h := make([]uint64, 0, n)
	for _, kf := range kfs {
		h = append(h, kf.h...)
	}
	return frame.Concat(fs), h
}

// colIndexes resolves column names to positions in f (-1 when absent, read
// as Null by the verifier — the same view value.Row.Get gives the row
// path).
func colIndexes(f *frame.Frame, cols []string) []int {
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = f.ColIndex(c)
	}
	return idx
}

// framesOf converts a partition's worth of kernel output back into a
// one-element batch slice, the shape columnar rdd partitions carry.
func framesOf(f *frame.Frame) []*frame.Frame { return []*frame.Frame{f} }

// matchRepr keeps a derivation representation-preserving: operators
// without a vectorized kernel compute on the row path, and when the input
// was columnar the output is re-boxed into batches so the rest of the
// plan (joins in particular) stays on the columnar path.
func matchRepr(in, out *dataset.Dataset) *dataset.Dataset {
	if in.IsColumnar() {
		return out.Columnar()
	}
	return out
}
