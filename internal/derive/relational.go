package derive

import (
	"fmt"
	"sort"
	"strings"

	"scrubjay/internal/dataset"
	"scrubjay/internal/frame"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// This file implements the paper's footnote-1 "interoperability layer":
// the filtering, projection, and aggregation semantics of traditional
// relational tools, packaged as serializable transformations so they can
// appear in reproducible derivation sequences. The derivation engine never
// inserts them automatically — they express analyst intent, not inferred
// structure — so none of them register candidate generators.

// FilterRows keeps rows whose column satisfies a comparison against a
// constant operand.
type FilterRows struct {
	// Column is the column tested.
	Column string
	// Op is one of "==", "!=", "<", "<=", ">", ">=", "contains".
	Op string
	// Operand is the constant, in Value.Parse text form.
	Operand string
}

func init() {
	RegisterTransformation("filter", func(p map[string]any) (Transformation, error) {
		col, err := paramString(p, "column")
		if err != nil {
			return nil, err
		}
		op, err := paramString(p, "op")
		if err != nil {
			return nil, err
		}
		operand, err := paramString(p, "operand")
		if err != nil {
			return nil, err
		}
		return &FilterRows{Column: col, Op: op, Operand: operand}, nil
	})
}

// Name implements Transformation.
func (f *FilterRows) Name() string { return "filter" }

// Params implements Transformation.
func (f *FilterRows) Params() map[string]any {
	return map[string]any{"column": f.Column, "op": f.Op, "operand": f.Operand}
}

func (f *FilterRows) predicate(dict *semantics.Dictionary, e semantics.Entry) (func(value.Value) bool, error) {
	operand := value.Parse(f.Operand)
	switch f.Op {
	case "==":
		return func(v value.Value) bool { return v.Compare(operand) == 0 }, nil
	case "!=":
		return func(v value.Value) bool { return v.Compare(operand) != 0 }, nil
	case "<", "<=", ">", ">=":
		dim, ok := dict.LookupDimension(e.Dimension)
		if !ok || !dim.Ordered {
			return nil, fmt.Errorf("filter: column %q lies on unordered dimension %q; only == and != apply", f.Column, e.Dimension)
		}
		op := f.Op
		return func(v value.Value) bool {
			c := v.Compare(operand)
			switch op {
			case "<":
				return c < 0
			case "<=":
				return c <= 0
			case ">":
				return c > 0
			default:
				return c >= 0
			}
		}, nil
	case "contains":
		needle := operand.String()
		return func(v value.Value) bool {
			if v.Kind() == value.KindList {
				for _, e := range v.ListVal() {
					if e.Compare(operand) == 0 {
						return true
					}
				}
				return false
			}
			return strings.Contains(v.String(), needle)
		}, nil
	default:
		return nil, fmt.Errorf("filter: unknown op %q", f.Op)
	}
}

// DeriveSchema implements Transformation: filtering never changes the
// schema, only validates the predicate.
func (f *FilterRows) DeriveSchema(in semantics.Schema, dict *semantics.Dictionary) (semantics.Schema, error) {
	e, ok := in[f.Column]
	if !ok {
		return nil, fmt.Errorf("filter: no column %q", f.Column)
	}
	if _, err := f.predicate(dict, e); err != nil {
		return nil, err
	}
	return in.Clone(), nil
}

// Apply implements Transformation. Rows whose column is null never match.
func (f *FilterRows) Apply(in *dataset.Dataset, dict *semantics.Dictionary) (*dataset.Dataset, error) {
	schema, err := f.DeriveSchema(in.Schema(), dict)
	if err != nil {
		return nil, err
	}
	pred, err := f.predicate(dict, in.Schema()[f.Column])
	if err != nil {
		return nil, err
	}
	col := f.Column
	name := fmt.Sprintf("%s|filter(%s%s%s)", in.Name(), f.Column, f.Op, f.Operand)
	if in.IsColumnar() {
		return filterColumnar(in, schema, name, col, f.Op, value.Parse(f.Operand), pred), nil
	}
	rows := rdd.Filter(in.Rows(), func(r value.Row) bool {
		v := r.Get(col)
		return !v.IsNull() && pred(v)
	})
	return dataset.New(name, rows.WithName(name), schema), nil
}

// ProjectColumns keeps only the listed value columns (all domain columns
// are always retained: per §4.3, a measurement defined over time may never
// not be defined over time, so projections cannot remove domains).
type ProjectColumns struct {
	// Values are the value columns to keep.
	Values []string
}

func init() {
	RegisterTransformation("project", func(p map[string]any) (Transformation, error) {
		raw, ok := p["values"]
		if !ok {
			return nil, fmt.Errorf("derive: missing parameter %q", "values")
		}
		var cols []string
		switch list := raw.(type) {
		case []any:
			for _, e := range list {
				s, ok := e.(string)
				if !ok {
					return nil, fmt.Errorf("project: values must be strings")
				}
				cols = append(cols, s)
			}
		case []string:
			cols = list
		default:
			return nil, fmt.Errorf("project: values must be a list")
		}
		return &ProjectColumns{Values: cols}, nil
	})
}

// Name implements Transformation.
func (p *ProjectColumns) Name() string { return "project" }

// Params implements Transformation.
func (p *ProjectColumns) Params() map[string]any {
	vals := make([]any, len(p.Values))
	for i, v := range p.Values {
		vals[i] = v
	}
	return map[string]any{"values": vals}
}

// DeriveSchema implements Transformation.
func (p *ProjectColumns) DeriveSchema(in semantics.Schema, dict *semantics.Dictionary) (semantics.Schema, error) {
	keep := map[string]bool{}
	for _, c := range p.Values {
		e, ok := in[c]
		if !ok {
			return nil, fmt.Errorf("project: no column %q", c)
		}
		if e.Relation != semantics.Value {
			return nil, fmt.Errorf("project: column %q is a domain; domains are always retained", c)
		}
		keep[c] = true
	}
	out := make(semantics.Schema, len(in))
	for c, e := range in {
		if e.Relation == semantics.Domain || keep[c] {
			out[c] = e
		}
	}
	return out, nil
}

// Apply implements Transformation.
func (p *ProjectColumns) Apply(in *dataset.Dataset, dict *semantics.Dictionary) (*dataset.Dataset, error) {
	schema, err := p.DeriveSchema(in.Schema(), dict)
	if err != nil {
		return nil, err
	}
	cols := schema.Columns()
	name := in.Name() + "|project"
	if in.IsColumnar() {
		frames := rdd.Map(in.Frames(), func(f *frame.Frame) *frame.Frame { return f.Select(cols) })
		return dataset.NewFrames(name, frames.WithName(name), schema), nil
	}
	rows := rdd.Map(in.Rows(), func(r value.Row) value.Row { return r.Project(cols...) })
	return dataset.New(name, rows.WithName(name), schema), nil
}

// AggregateBy groups rows by the listed domain columns and aggregates value
// columns. Domain columns not listed are dropped — the analyst is
// deliberately coarsening the domain, which only the interoperability layer
// may do. Value columns not mentioned in Ops are dropped.
type AggregateBy struct {
	// GroupBy lists the domain columns to keep as the group key.
	GroupBy []string
	// Ops maps value columns to an aggregate: mean, sum, min, max, count.
	Ops map[string]string
}

func init() {
	RegisterTransformation("aggregate", func(p map[string]any) (Transformation, error) {
		var groupBy []string
		switch list := p["group_by"].(type) {
		case []any:
			for _, e := range list {
				s, ok := e.(string)
				if !ok {
					return nil, fmt.Errorf("aggregate: group_by must be strings")
				}
				groupBy = append(groupBy, s)
			}
		case []string:
			groupBy = list
		case nil:
			return nil, fmt.Errorf("derive: missing parameter %q", "group_by")
		default:
			return nil, fmt.Errorf("aggregate: group_by must be a list")
		}
		ops := map[string]string{}
		switch m := p["ops"].(type) {
		case map[string]any:
			for c, o := range m {
				s, ok := o.(string)
				if !ok {
					return nil, fmt.Errorf("aggregate: ops must map to strings")
				}
				ops[c] = s
			}
		case map[string]string:
			ops = m
		case nil:
			return nil, fmt.Errorf("derive: missing parameter %q", "ops")
		default:
			return nil, fmt.Errorf("aggregate: ops must be a map")
		}
		return &AggregateBy{GroupBy: groupBy, Ops: ops}, nil
	})
}

// Name implements Transformation.
func (a *AggregateBy) Name() string { return "aggregate" }

// Params implements Transformation.
func (a *AggregateBy) Params() map[string]any {
	gb := make([]any, len(a.GroupBy))
	for i, c := range a.GroupBy {
		gb[i] = c
	}
	ops := map[string]any{}
	for c, o := range a.Ops {
		ops[c] = o
	}
	return map[string]any{"group_by": gb, "ops": ops}
}

func validAggOp(op string) bool {
	switch op {
	case "mean", "sum", "min", "max", "count":
		return true
	default:
		return false
	}
}

// DeriveSchema implements Transformation. Count aggregates become plain
// counts; mean/sum/min/max keep the column's entry.
func (a *AggregateBy) DeriveSchema(in semantics.Schema, dict *semantics.Dictionary) (semantics.Schema, error) {
	if len(a.GroupBy) == 0 {
		return nil, fmt.Errorf("aggregate: group_by must be non-empty")
	}
	out := semantics.Schema{}
	for _, c := range a.GroupBy {
		e, ok := in[c]
		if !ok {
			return nil, fmt.Errorf("aggregate: no column %q", c)
		}
		if e.Relation != semantics.Domain {
			return nil, fmt.Errorf("aggregate: group column %q is not a domain", c)
		}
		out[c] = e
	}
	cols := make([]string, 0, len(a.Ops))
	for c := range a.Ops {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	for _, c := range cols {
		op := a.Ops[c]
		if !validAggOp(op) {
			return nil, fmt.Errorf("aggregate: unknown op %q for column %q", op, c)
		}
		e, ok := in[c]
		if !ok {
			return nil, fmt.Errorf("aggregate: no column %q", c)
		}
		if e.Relation != semantics.Value {
			return nil, fmt.Errorf("aggregate: aggregated column %q is not a value", c)
		}
		outCol := c + "_" + op
		if op == "count" {
			out[outCol] = semantics.ValueEntry("count", "count")
		} else {
			out[outCol] = e
		}
	}
	return out, nil
}

// Apply implements Transformation.
func (a *AggregateBy) Apply(in *dataset.Dataset, dict *semantics.Dictionary) (*dataset.Dataset, error) {
	schema, err := a.DeriveSchema(in.Schema(), dict)
	if err != nil {
		return nil, err
	}
	groupBy := append([]string(nil), a.GroupBy...)
	type aggOp struct{ col, op string }
	ops := make([]aggOp, 0, len(a.Ops))
	for c, o := range a.Ops {
		ops = append(ops, aggOp{c, o})
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].col < ops[j].col })

	grouped := rdd.GroupByKey(rdd.WithWire(in.Rows(), rowWire), func(r value.Row) string {
		return r.KeyStringOn(groupBy)
	})
	rows := rdd.Map(grouped, func(g rdd.Group[value.Row]) value.Row {
		out := g.Items[0].Project(groupBy...)
		for _, o := range ops {
			var vals []value.Value
			for _, r := range g.Items {
				if v := r.Get(o.col); !v.IsNull() {
					vals = append(vals, v)
				}
			}
			outCol := o.col + "_" + o.op
			switch o.op {
			case "count":
				out[outCol] = value.Int(int64(len(vals)))
			case "mean":
				out[outCol] = value.Mean(vals)
			case "sum":
				var sum float64
				any := false
				for _, v := range vals {
					if f, ok := v.AsFloat(); ok {
						sum += f
						any = true
					}
				}
				if any {
					out[outCol] = value.Float(sum)
				}
			case "min", "max":
				var best value.Value
				for _, v := range vals {
					if best.IsNull() ||
						(o.op == "min" && v.Compare(best) < 0) ||
						(o.op == "max" && v.Compare(best) > 0) {
						best = v
					}
				}
				if !best.IsNull() {
					out[outCol] = best
				}
			}
		}
		return out
	})
	name := in.Name() + "|aggregate"
	return matchRepr(in, dataset.New(name, rows.WithName(name), schema)), nil
}
