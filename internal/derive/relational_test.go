package derive

import (
	"math"
	"testing"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

func relSchema() semantics.Schema {
	return semantics.NewSchema(
		"node", semantics.IDDomain("compute_node"),
		"time", semantics.TimeDomain(),
		"nodelist", semantics.IDListDomain("compute_node"),
		"temp", semantics.ValueEntry("temperature", "degrees_celsius"),
		"power", semantics.ValueEntry("power", "watts"),
	)
}

func relRows() []value.Row {
	mk := func(node string, t int64, temp, power float64) value.Row {
		return value.NewRow("node", value.Str(node), "time", value.TimeNanos(t*1e9),
			"temp", value.Float(temp), "power", value.Float(power))
	}
	return []value.Row{
		mk("n1", 0, 60, 100),
		mk("n1", 60, 70, 200),
		mk("n2", 0, 50, 150),
		mk("n2", 60, 55, 250),
		value.NewRow("node", value.Str("n3"), "time", value.TimeNanos(0),
			"nodelist", value.StrList("a", "b")),
	}
}

func relDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	ctx := rdd.NewContext(2)
	return dataset.FromRows(ctx, "rel", relRows(), relSchema(), 2)
}

func TestFilterComparisons(t *testing.T) {
	dict := semantics.DefaultDictionary()
	ds := relDataset(t)
	cases := []struct {
		f    FilterRows
		want int64
	}{
		{FilterRows{Column: "temp", Op: ">=", Operand: "60.0"}, 2},
		{FilterRows{Column: "temp", Op: ">", Operand: "60.0"}, 1},
		{FilterRows{Column: "temp", Op: "<", Operand: "55.0"}, 1},
		{FilterRows{Column: "temp", Op: "<=", Operand: "55.0"}, 2},
		{FilterRows{Column: "node", Op: "==", Operand: "n1"}, 2},
		{FilterRows{Column: "node", Op: "!=", Operand: "n1"}, 3},
		{FilterRows{Column: "node", Op: "contains", Operand: "n"}, 5},
		{FilterRows{Column: "nodelist", Op: "contains", Operand: "a"}, 1},
		{FilterRows{Column: "nodelist", Op: "contains", Operand: "zz"}, 0},
	}
	for _, c := range cases {
		out, err := c.f.Apply(ds, dict)
		if err != nil {
			t.Fatalf("%+v: %v", c.f, err)
		}
		if got := out.Count(); got != c.want {
			t.Errorf("%+v: count = %d, want %d", c.f, got, c.want)
		}
		if !out.Schema().Equal(ds.Schema()) {
			t.Errorf("%+v: schema changed", c.f)
		}
	}
}

func TestFilterNullsNeverMatch(t *testing.T) {
	dict := semantics.DefaultDictionary()
	ds := relDataset(t)
	// n3 has a null temp; != should still exclude it.
	out, err := (&FilterRows{Column: "temp", Op: "!=", Operand: "999.0"}).Apply(ds, dict)
	if err != nil {
		t.Fatal(err)
	}
	if out.Count() != 4 {
		t.Errorf("count = %d, want 4 (null row excluded)", out.Count())
	}
}

func TestFilterErrors(t *testing.T) {
	dict := semantics.DefaultDictionary()
	s := relSchema()
	cases := []FilterRows{
		{Column: "nope", Op: "==", Operand: "1"},
		{Column: "temp", Op: "~", Operand: "1"},
		{Column: "node", Op: "<", Operand: "x"}, // unordered dimension
	}
	for _, c := range cases {
		if _, err := c.DeriveSchema(s, dict); err == nil {
			t.Errorf("%+v should fail", c)
		}
	}
}

func TestProjectKeepsDomains(t *testing.T) {
	dict := semantics.DefaultDictionary()
	ds := relDataset(t)
	out, err := (&ProjectColumns{Values: []string{"temp"}}).Apply(ds, dict)
	if err != nil {
		t.Fatal(err)
	}
	sch := out.Schema()
	for _, want := range []string{"node", "time", "nodelist", "temp"} {
		if _, ok := sch[want]; !ok {
			t.Errorf("column %q missing: %v", want, sch)
		}
	}
	if _, ok := sch["power"]; ok {
		t.Error("power should be projected away")
	}
	for _, r := range out.Collect() {
		if r.Has("power") {
			t.Errorf("row retains power: %v", r)
		}
	}
}

func TestProjectErrors(t *testing.T) {
	dict := semantics.DefaultDictionary()
	s := relSchema()
	if _, err := (&ProjectColumns{Values: []string{"nope"}}).DeriveSchema(s, dict); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := (&ProjectColumns{Values: []string{"node"}}).DeriveSchema(s, dict); err == nil {
		t.Error("projecting a domain should fail")
	}
}

func TestAggregateBy(t *testing.T) {
	dict := semantics.DefaultDictionary()
	ds := relDataset(t)
	agg := &AggregateBy{
		GroupBy: []string{"node"},
		Ops:     map[string]string{"temp": "mean", "power": "max"},
	}
	out, err := agg.Apply(ds, dict)
	if err != nil {
		t.Fatal(err)
	}
	sch := out.Schema()
	if _, ok := sch["time"]; ok {
		t.Error("unlisted domain should be dropped")
	}
	if e := sch["temp_mean"]; e.Dimension != "temperature" {
		t.Errorf("temp_mean entry = %v", e)
	}
	rows := out.SortedBy("node")
	if len(rows) != 3 {
		t.Fatalf("groups = %d: %v", len(rows), rows)
	}
	if v := rows[0].Get("temp_mean").FloatVal(); math.Abs(v-65) > 1e-9 {
		t.Errorf("n1 mean temp = %v", v)
	}
	if v := rows[0].Get("power_max").FloatVal(); math.Abs(v-200) > 1e-9 {
		t.Errorf("n1 max power = %v", v)
	}
	// n3 has no temp/power values at all.
	if rows[2].Has("temp_mean") || rows[2].Has("power_max") {
		t.Errorf("n3 aggregates should be absent: %v", rows[2])
	}
}

func TestAggregateSumMinCount(t *testing.T) {
	dict := semantics.DefaultDictionary()
	ds := relDataset(t)
	agg := &AggregateBy{
		GroupBy: []string{"node"},
		Ops:     map[string]string{"temp": "count", "power": "sum"},
	}
	out, err := agg.Apply(ds, dict)
	if err != nil {
		t.Fatal(err)
	}
	if e := out.Schema()["temp_count"]; e.Dimension != "count" || e.Units != "count" {
		t.Errorf("count entry = %v", e)
	}
	rows := out.SortedBy("node")
	if rows[0].Get("temp_count").IntVal() != 2 {
		t.Errorf("n1 count = %v", rows[0].Get("temp_count"))
	}
	if v := rows[1].Get("power_sum").FloatVal(); math.Abs(v-400) > 1e-9 {
		t.Errorf("n2 power sum = %v", v)
	}
	if rows[2].Get("temp_count").IntVal() != 0 {
		t.Errorf("n3 count = %v", rows[2].Get("temp_count"))
	}

	aggMin := &AggregateBy{GroupBy: []string{"node"}, Ops: map[string]string{"temp": "min"}}
	out2, err := aggMin.Apply(ds, dict)
	if err != nil {
		t.Fatal(err)
	}
	r2 := out2.SortedBy("node")
	if v := r2[0].Get("temp_min").FloatVal(); math.Abs(v-60) > 1e-9 {
		t.Errorf("n1 min temp = %v", v)
	}
}

func TestAggregateErrors(t *testing.T) {
	dict := semantics.DefaultDictionary()
	s := relSchema()
	cases := []*AggregateBy{
		{GroupBy: nil, Ops: map[string]string{"temp": "mean"}},
		{GroupBy: []string{"nope"}, Ops: map[string]string{"temp": "mean"}},
		{GroupBy: []string{"temp"}, Ops: map[string]string{"power": "mean"}}, // group by value
		{GroupBy: []string{"node"}, Ops: map[string]string{"temp": "median"}},
		{GroupBy: []string{"node"}, Ops: map[string]string{"nope": "mean"}},
		{GroupBy: []string{"node"}, Ops: map[string]string{"time": "mean"}}, // aggregate a domain
	}
	for _, c := range cases {
		if _, err := c.DeriveSchema(s, dict); err == nil {
			t.Errorf("%+v should fail", c)
		}
	}
}

func TestRelationalRegistryRoundTrip(t *testing.T) {
	dict := semantics.DefaultDictionary()
	s := relSchema()
	for _, d := range []Transformation{
		&FilterRows{Column: "temp", Op: ">", Operand: "50.0"},
		&ProjectColumns{Values: []string{"temp"}},
		&AggregateBy{GroupBy: []string{"node"}, Ops: map[string]string{"temp": "mean"}},
	} {
		rebuilt, err := NewTransformation(d.Name(), d.Params())
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		a, err1 := d.DeriveSchema(s, dict)
		b, err2 := rebuilt.DeriveSchema(s, dict)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", d.Name(), err1, err2)
		}
		if !a.Equal(b) {
			t.Errorf("%s: rebuilt transformation differs", d.Name())
		}
	}
	// Bad params through the registry.
	if _, err := NewTransformation("filter", map[string]any{"column": "x"}); err == nil {
		t.Error("filter without op should fail")
	}
	if _, err := NewTransformation("project", map[string]any{}); err == nil {
		t.Error("project without values should fail")
	}
	if _, err := NewTransformation("project", map[string]any{"values": []any{1}}); err == nil {
		t.Error("project with non-string values should fail")
	}
	if _, err := NewTransformation("aggregate", map[string]any{"group_by": []any{"n"}}); err == nil {
		t.Error("aggregate without ops should fail")
	}
	if _, err := NewTransformation("aggregate", map[string]any{"group_by": []any{"n"}, "ops": map[string]any{"t": 5}}); err == nil {
		t.Error("aggregate with non-string op should fail")
	}
}

func TestRelationalNotAutoCandidates(t *testing.T) {
	// The interoperability layer is analyst-driven: the engine's candidate
	// enumeration must never propose filter/project/aggregate.
	dict := semantics.DefaultDictionary()
	for _, c := range Candidates(relSchema(), dict, DefaultCandidateOptions()) {
		switch c.Name() {
		case "filter", "project", "aggregate":
			t.Errorf("%s must not be an automatic candidate", c.Name())
		}
	}
}

func TestRenameColumn(t *testing.T) {
	dict := semantics.DefaultDictionary()
	ds := relDataset(t)
	out, err := (&RenameColumn{From: "node", To: "NODEID"}).Apply(ds, dict)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.Schema()["node"]; ok {
		t.Error("old name should be gone")
	}
	e, ok := out.Schema()["NODEID"]
	if !ok || e.Dimension != "compute_node" {
		t.Errorf("renamed entry = %v", e)
	}
	for _, r := range out.Collect() {
		if r.Has("node") {
			t.Errorf("row retains old column: %v", r)
		}
	}
	// Semantics unchanged: the renamed dataset still joins by dimension.
	if err := out.Validate(dict); err != nil {
		t.Errorf("renamed dataset invalid: %v", err)
	}

	// Errors.
	for _, bad := range []*RenameColumn{
		{From: "missing", To: "x"},
		{From: "node", To: ""},
		{From: "node", To: "node"},
		{From: "node", To: "temp"},
	} {
		if _, err := bad.DeriveSchema(relSchema(), dict); err == nil {
			t.Errorf("%+v should fail", bad)
		}
	}
	// Registry round trip.
	rebuilt, err := NewTransformation("rename_column", (&RenameColumn{From: "node", To: "n2"}).Params())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rebuilt.DeriveSchema(relSchema(), dict); err != nil {
		t.Errorf("rebuilt rename: %v", err)
	}
}
