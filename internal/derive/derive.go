// Package derive implements ScrubJay's data derivations (§4.3 of the paper):
// transformations, which produce a modified dataset from an existing one,
// and combinations, which relate two datasets into a merged result.
//
// Every derivation is described twice: DeriveSchema computes the semantics
// of the output from the semantics of the input(s) — the cheap, data-free
// operation the derivation engine searches over (§5.2) — and Apply performs
// the actual data-parallel computation (§5.3). Derivations self-register by
// name with JSON-serializable parameters so derivation sequences can be
// stored, shared, edited, and replayed (§5.4).
package derive

import (
	"fmt"
	"sort"
	"sync"

	"scrubjay/internal/dataset"
	"scrubjay/internal/semantics"
)

// Transformation derives a new dataset from one input dataset.
type Transformation interface {
	// Name is the registry name of the derivation kind.
	Name() string
	// Params returns the JSON-serializable parameters identifying this
	// instance.
	Params() map[string]any
	// DeriveSchema computes the output schema, or an error if the
	// transformation does not apply to the input schema.
	DeriveSchema(in semantics.Schema, dict *semantics.Dictionary) (semantics.Schema, error)
	// Apply executes the transformation.
	Apply(in *dataset.Dataset, dict *semantics.Dictionary) (*dataset.Dataset, error)
}

// Combination derives a relation between two datasets.
type Combination interface {
	Name() string
	Params() map[string]any
	DeriveSchema(left, right semantics.Schema, dict *semantics.Dictionary) (semantics.Schema, error)
	Apply(left, right *dataset.Dataset, dict *semantics.Dictionary) (*dataset.Dataset, error)
}

// Factories rebuild derivations from their serialized (name, params) form.
type (
	TransformationFactory func(params map[string]any) (Transformation, error)
	CombinationFactory    func(params map[string]any) (Combination, error)
)

var (
	regMu        sync.RWMutex
	transFactory = map[string]TransformationFactory{}
	combFactory  = map[string]CombinationFactory{}
)

// RegisterTransformation installs a factory under a derivation name.
func RegisterTransformation(name string, f TransformationFactory) {
	regMu.Lock()
	defer regMu.Unlock()
	transFactory[name] = f
}

// RegisterCombination installs a factory under a derivation name.
func RegisterCombination(name string, f CombinationFactory) {
	regMu.Lock()
	defer regMu.Unlock()
	combFactory[name] = f
}

// NewTransformation rebuilds a transformation from its serialized form.
func NewTransformation(name string, params map[string]any) (Transformation, error) {
	regMu.RLock()
	f, ok := transFactory[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("derive: unknown transformation %q", name)
	}
	return f(params)
}

// NewCombination rebuilds a combination from its serialized form.
func NewCombination(name string, params map[string]any) (Combination, error) {
	regMu.RLock()
	f, ok := combFactory[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("derive: unknown combination %q", name)
	}
	return f(params)
}

// TransformationNames lists registered transformation names, sorted.
func TransformationNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(transFactory))
	for n := range transFactory {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CombinationNames lists registered combination names, sorted.
func CombinationNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(combFactory))
	for n := range combFactory {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ---- Parameter decoding helpers (params arrive as generic JSON maps) ----

func paramString(params map[string]any, key string) (string, error) {
	v, ok := params[key]
	if !ok {
		return "", fmt.Errorf("derive: missing parameter %q", key)
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("derive: parameter %q must be a string, got %T", key, v)
	}
	return s, nil
}

func paramStringDefault(params map[string]any, key, def string) (string, error) {
	if _, ok := params[key]; !ok {
		return def, nil
	}
	return paramString(params, key)
}

func paramFloat(params map[string]any, key string) (float64, error) {
	v, ok := params[key]
	if !ok {
		return 0, fmt.Errorf("derive: missing parameter %q", key)
	}
	switch n := v.(type) {
	case float64:
		return n, nil
	case int:
		return float64(n), nil
	case int64:
		return float64(n), nil
	default:
		return 0, fmt.Errorf("derive: parameter %q must be a number, got %T", key, v)
	}
}

// CandidateOptions tunes automatic derivation instantiation in the engine.
type CandidateOptions struct {
	// ExplodePeriodSeconds is the sampling period used when exploding a
	// timespan into discrete instants (explode continuous).
	ExplodePeriodSeconds float64
}

// DefaultCandidateOptions matches the paper's facility data: rack sensors
// sample every two minutes, so spans explode at 60-second granularity.
func DefaultCandidateOptions() CandidateOptions {
	return CandidateOptions{ExplodePeriodSeconds: 60}
}

// Candidates enumerates the transformations that apply to a schema, with
// parameters inferred from the semantics. This is how the derivation engine
// discovers representation changes (explodes) and derivable value dimensions
// (rates, heat, active frequency) without user input.
func Candidates(s semantics.Schema, dict *semantics.Dictionary, opts CandidateOptions) []Transformation {
	var out []Transformation
	for _, gen := range candidateGenerators() {
		out = append(out, gen(s, dict, opts)...)
	}
	return out
}

// candidateGenerator proposes applicable transformations for a schema.
type candidateGenerator func(semantics.Schema, *semantics.Dictionary, CandidateOptions) []Transformation

var (
	genMu         sync.RWMutex
	candidateGens []candidateGenerator
)

func registerCandidateGenerator(g candidateGenerator) {
	genMu.Lock()
	defer genMu.Unlock()
	candidateGens = append(candidateGens, g)
}

func candidateGenerators() []candidateGenerator {
	genMu.RLock()
	defer genMu.RUnlock()
	return append([]candidateGenerator(nil), candidateGens...)
}
