package derive

import (
	"sort"

	"scrubjay/internal/dataset"
	"scrubjay/internal/frame"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// rateColumnar is the vectorized counter-rate kernel. Batches are
// hash-exchanged on the non-time domain columns so each counter identity
// lands in one partition, rows group in first-seen order (verified, as in
// the join), each group sorts by time, and consecutive samples difference
// into rate columns built cell-by-cell — one gather for the carried
// columns instead of a row clone per output sample.
func rateColumnar(in *dataset.Dataset, schema semantics.Schema, name, timeCol string,
	counters, groupCols []string) *dataset.Dataset {

	ex := hashExchange(in.Frames(), groupCols, nil, in.Frames().NumPartitions(), name)
	frames := rdd.MapPartitions(ex, func(_ int, kfs []keyedFrame) []*frame.Frame {
		f, h := concatKeyed(kfs)
		if f.NumRows() == 0 {
			return framesOf(frame.Empty())
		}
		gIdx := colIndexes(f, groupCols)

		// Group rows by counter identity in first-seen order; buckets hold
		// group ids per hash, disambiguated by value equality.
		var groups [][]int32
		buckets := make(map[uint64][]int32, f.NumRows())
		for i := 0; i < f.NumRows(); i++ {
			gid := int32(-1)
			for _, g := range buckets[h[i]] {
				if frame.ValuesEqualOn(f, i, gIdx, f, int(groups[g][0]), gIdx, nil) {
					gid = g
					break
				}
			}
			if gid < 0 {
				gid = int32(len(groups))
				groups = append(groups, nil)
				buckets[h[i]] = append(buckets[h[i]], gid)
			}
			groups[gid] = append(groups[gid], int32(i))
		}

		tc := f.Col(timeCol)
		typedTime := tc != nil && tc.Kind() == value.KindTime
		var tInts []int64
		if typedTime {
			tInts = tc.Ints()
		}
		timeNanos := func(i int32) int64 {
			if typedTime && tc.Present(int(i)) {
				return tInts[i]
			}
			if tc == nil {
				return 0
			}
			return tc.Value(int(i)).TimeNanosVal()
		}
		timeLess := func(a, b int32) bool {
			if typedTime && tc.Present(int(a)) && tc.Present(int(b)) {
				return tInts[a] < tInts[b]
			}
			var va, vb value.Value
			if tc != nil {
				va, vb = tc.Value(int(a)), tc.Value(int(b))
			}
			return va.Compare(vb) < 0
		}

		// Sort each group by time and pick the valid consecutive pairs.
		var sel, prevSel []int32
		var dts []float64
		for _, g := range groups {
			idx := make([]int32, len(g))
			copy(idx, g)
			sort.SliceStable(idx, func(a, b int) bool { return timeLess(idx[a], idx[b]) })
			for k := 1; k < len(idx); k++ {
				dtN := timeNanos(idx[k]) - timeNanos(idx[k-1])
				if dtN <= 0 {
					continue
				}
				sel = append(sel, idx[k])
				prevSel = append(prevSel, idx[k-1])
				dts = append(dts, float64(dtN)/1e9)
			}
		}

		out := f.Drop(counters...).Gather(sel)
		var bld *frame.Builder // one scratch, Reset-reused across counter columns
		for _, c := range counters {
			cc := f.Col(c)
			getF := func(i int32) (float64, bool) {
				if cc == nil {
					return 0, false
				}
				return cc.Value(int(i)).AsFloat()
			}
			if cc != nil {
				switch cc.Kind() {
				case value.KindInt:
					ints := cc.Ints()
					getF = func(i int32) (float64, bool) {
						if !cc.Present(int(i)) {
							return 0, false
						}
						return float64(ints[i]), true
					}
				case value.KindFloat:
					flts := cc.Floats()
					getF = func(i int32) (float64, bool) {
						if !cc.Present(int(i)) {
							return 0, false
						}
						return flts[i], true
					}
				}
			}
			if bld == nil {
				//sjvet:ignore hotalloc -- constructed once, then Reset-reused for every later counter column
				bld = frame.NewBuilder(RateColumn(c), len(sel))
			} else {
				//sjvet:ignore hotalloc -- Reset only reallocates past the high-water mark; RateColumn names the output column
				bld.Reset(RateColumn(c), len(sel))
			}
			b := bld
			for k := range sel {
				pv, pok := getF(prevSel[k])
				cv, cok := getF(sel[k])
				if !pok || !cok || cv < pv {
					// Missing sample or counter reset: no valid rate.
					continue
				}
				b.Set(k, value.Float((cv-pv)/dts[k]))
			}
			out = out.With(b.Finish())
		}
		return framesOf(out)
	})
	return dataset.NewFrames(name, frames.WithName(name), schema)
}
