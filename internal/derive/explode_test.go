package derive

import (
	"testing"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

func jobSchema() semantics.Schema {
	return semantics.NewSchema(
		"job_id", semantics.IDDomain("job"),
		"job_name", semantics.ValueEntry("application", "identifier"),
		"elapsed", semantics.ValueEntry("time_duration", "seconds"),
		"nodelist", semantics.IDListDomain("compute_node"),
		"timespan", semantics.SpanDomain(),
	)
}

func jobRows() []value.Row {
	return []value.Row{
		value.NewRow(
			"job_id", value.Str("j1"),
			"job_name", value.Str("AMG"),
			"elapsed", value.Float(120),
			"nodelist", value.StrList("n1", "n2"),
			"timespan", value.Span(0, 180e9),
		),
		value.NewRow(
			"job_id", value.Str("j2"),
			"job_name", value.Str("mg.C"),
			"elapsed", value.Float(60),
			"nodelist", value.StrList("n3"),
			"timespan", value.Span(200e9, 230e9),
		),
	}
}

func TestExplodeDiscrete(t *testing.T) {
	ctx := rdd.NewContext(2)
	dict := semantics.DefaultDictionary()
	ds := dataset.FromRows(ctx, "jobs", jobRows(), jobSchema(), 2)

	ex := &ExplodeDiscrete{Column: "nodelist"}
	out, err := ex.Apply(ds, dict)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.Schema()["nodelist"]; ok {
		t.Error("nodelist should be removed from schema")
	}
	e, ok := out.Schema()["nodelist_exploded"]
	if !ok || e.Units != "identifier" || e.Dimension != "compute_node" || e.Relation != semantics.Domain {
		t.Errorf("exploded entry = %v", e)
	}
	rows := out.SortedBy("nodelist_exploded")
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0].Get("nodelist_exploded").StrVal() != "n1" ||
		rows[2].Get("nodelist_exploded").StrVal() != "n3" {
		t.Errorf("exploded values wrong: %v", rows)
	}
	// Other columns carried through.
	if rows[2].Get("job_name").StrVal() != "mg.C" {
		t.Error("carried columns lost")
	}
	if err := out.Validate(dict); err != nil {
		t.Errorf("exploded dataset invalid: %v", err)
	}
}

func TestExplodeDiscreteErrors(t *testing.T) {
	dict := semantics.DefaultDictionary()
	s := jobSchema()
	cases := []*ExplodeDiscrete{
		{Column: "missing"},
		{Column: "job_name"},               // value, not domain
		{Column: "job_id"},                 // not a list
		{Column: "nodelist", As: "job_id"}, // output exists
	}
	for _, c := range cases {
		if _, err := c.DeriveSchema(s, dict); err == nil {
			t.Errorf("%+v should fail", c)
		}
	}
}

func TestExplodeDiscreteDropsEmpty(t *testing.T) {
	ctx := rdd.NewContext(1)
	dict := semantics.DefaultDictionary()
	rows := []value.Row{
		value.NewRow("nodelist", value.List(), "job_id", value.Str("j")),
		value.NewRow("job_id", value.Str("k")),
	}
	ds := dataset.FromRows(ctx, "jobs", rows, jobSchema(), 1)
	out, err := (&ExplodeDiscrete{Column: "nodelist"}).Apply(ds, dict)
	if err != nil {
		t.Fatal(err)
	}
	if out.Count() != 0 {
		t.Errorf("rows with empty/missing lists should be dropped, got %d", out.Count())
	}
}

func TestExplodeContinuous(t *testing.T) {
	ctx := rdd.NewContext(2)
	dict := semantics.DefaultDictionary()
	ds := dataset.FromRows(ctx, "jobs", jobRows(), jobSchema(), 2)

	ex := &ExplodeContinuous{Column: "timespan", PeriodSeconds: 60}
	out, err := ex.Apply(ds, dict)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := out.Schema()["timespan_exploded"]
	if !ok || e.Units != "datetime" || e.Dimension != "time" {
		t.Errorf("exploded entry = %v", e)
	}
	rows := out.SortedBy("job_id", "timespan_exploded")
	// j1 spans [0,180): instants 0,60,120 -> 3. j2 spans [200,230): no
	// aligned instant inside, so the start instant 200 is kept -> 1.
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4: %v", len(rows), rows)
	}
	if rows[0].Get("timespan_exploded").TimeNanosVal() != 0 ||
		rows[2].Get("timespan_exploded").TimeNanosVal() != 120e9 {
		t.Errorf("instants wrong: %v", rows)
	}
	if rows[3].Get("timespan_exploded").TimeNanosVal() != 200e9 {
		t.Errorf("short span should keep start: %v", rows[3])
	}
	if err := out.Validate(dict); err != nil {
		t.Errorf("exploded dataset invalid: %v", err)
	}
}

func TestExplodeContinuousGridAligned(t *testing.T) {
	// Spans starting at different offsets produce coincident instants.
	ctx := rdd.NewContext(1)
	dict := semantics.DefaultDictionary()
	rows := []value.Row{
		value.NewRow("job_id", value.Str("a"), "timespan", value.Span(10e9, 130e9)),
		value.NewRow("job_id", value.Str("b"), "timespan", value.Span(55e9, 130e9)),
	}
	ds := dataset.FromRows(ctx, "jobs", rows, jobSchema(), 1)
	out, err := (&ExplodeContinuous{Column: "timespan", PeriodSeconds: 60}).Apply(ds, dict)
	if err != nil {
		t.Fatal(err)
	}
	got := out.SortedBy("job_id", "timespan_exploded")
	// a: 60,120; b: 60,120 — all grid aligned.
	if len(got) != 4 {
		t.Fatalf("rows = %v", got)
	}
	if got[0].Get("timespan_exploded").TimeNanosVal() != got[2].Get("timespan_exploded").TimeNanosVal() {
		t.Error("instants from different spans should coincide on the grid")
	}
}

func TestExplodeContinuousErrors(t *testing.T) {
	dict := semantics.DefaultDictionary()
	s := jobSchema()
	cases := []*ExplodeContinuous{
		{Column: "missing", PeriodSeconds: 60},
		{Column: "nodelist", PeriodSeconds: 60}, // not a timespan
		{Column: "timespan", PeriodSeconds: 0},  // bad period
		{Column: "timespan", PeriodSeconds: 60, As: "job_id"},
	}
	for _, c := range cases {
		if _, err := c.DeriveSchema(s, dict); err == nil {
			t.Errorf("%+v should fail", c)
		}
	}
}

func TestExplodeRoundTripThroughRegistry(t *testing.T) {
	for _, d := range []Transformation{
		&ExplodeDiscrete{Column: "nodelist", As: "node"},
		&ExplodeContinuous{Column: "timespan", PeriodSeconds: 30, As: "t"},
	} {
		rebuilt, err := NewTransformation(d.Name(), d.Params())
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		s := jobSchema()
		dict := semantics.DefaultDictionary()
		a, err1 := d.DeriveSchema(s, dict)
		b, err2 := rebuilt.DeriveSchema(s, dict)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", d.Name(), err1, err2)
		}
		if !a.Equal(b) {
			t.Errorf("%s: rebuilt derivation derives different schema", d.Name())
		}
	}
}

func TestCandidatesForJobSchema(t *testing.T) {
	dict := semantics.DefaultDictionary()
	cands := Candidates(jobSchema(), dict, DefaultCandidateOptions())
	var names []string
	for _, c := range cands {
		names = append(names, c.Name())
	}
	hasED, hasEC := false, false
	for _, n := range names {
		if n == "explode_discrete" {
			hasED = true
		}
		if n == "explode_continuous" {
			hasEC = true
		}
	}
	if !hasED || !hasEC {
		t.Errorf("candidates = %v, want explode_discrete and explode_continuous", names)
	}
}
