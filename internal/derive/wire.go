package derive

import (
	"encoding/binary"
	"fmt"

	"scrubjay/internal/frame"
	"scrubjay/internal/rdd"
	"scrubjay/internal/shuffle"
	"scrubjay/internal/value"
)

// Wire codecs for every element type the derivation kernels shuffle. Each
// shuffle call site attaches the matching wire via rdd.WithWire, which makes
// that exchange eligible for the distributed path (internal/cluster) when
// the Context carries a Placement; without one, the wires are inert and the
// in-process exchange runs unchanged. Elements are self-delimiting, so a
// merged destination payload decodes by looping until exhausted.
//
// All codecs round-trip exactly — the same canonical binary forms
// (value.AppendBinary, the shuffle batch codec) that keep distributed runs
// bit-for-bit identical to in-process ones.

// rowWire carries bare value.Row elements (aggregate, heat, rate shuffles).
var rowWire = &rdd.Wire[value.Row]{
	Append: func(buf []byte, r value.Row) []byte { return r.AppendBinary(buf) },
	Decode: value.DecodeRow,
}

// keyedFrameWire carries columnar hash-exchange batches: the frame plus its
// per-row composite key hashes.
var keyedFrameWire = &rdd.Wire[keyedFrame]{
	Append: func(buf []byte, kf keyedFrame) []byte { return shuffle.AppendBatch(buf, kf.f, kf.h) },
	Decode: func(b []byte) (keyedFrame, int, error) {
		f, h, n, err := shuffle.DecodeBatch(b)
		if err != nil {
			return keyedFrame{}, 0, err
		}
		if h == nil {
			h = make([]uint64, 0, f.NumRows())
		}
		return keyedFrame{f: f, h: h}, n, nil
	},
}

// frameWire carries bare *frame.Frame batches.
var frameWire = &rdd.Wire[*frame.Frame]{
	Append: shuffle.AppendFrame,
	Decode: shuffle.DecodeFrame,
}

// keyedRowWire carries the natural join's pre-keyed rows.
var keyedRowWire = &rdd.Wire[keyedRow]{
	Append: func(buf []byte, kr keyedRow) []byte {
		buf = appendWireString(buf, kr.key)
		return kr.row.AppendBinary(buf)
	},
	Decode: func(b []byte) (keyedRow, int, error) {
		key, n, err := decodeWireString(b)
		if err != nil {
			return keyedRow{}, 0, err
		}
		row, rn, err := value.DecodeRow(b[n:])
		if err != nil {
			return keyedRow{}, 0, err
		}
		return keyedRow{key: key, row: row}, n + rn, nil
	},
}

// interpTaggedWire carries the row-path interpolation join's tagged copies.
var interpTaggedWire = &rdd.Wire[interpTagged]{
	Append: func(buf []byte, e interpTagged) []byte {
		buf = appendWireString(buf, e.key)
		buf = binary.AppendVarint(buf, e.id)
		buf = binary.AppendVarint(buf, e.t)
		buf = binary.AppendVarint(buf, e.binA)
		return e.row.AppendBinary(buf)
	},
	Decode: func(b []byte) (interpTagged, int, error) {
		var e interpTagged
		key, pos, err := decodeWireString(b)
		if err != nil {
			return e, 0, err
		}
		e.key = key
		for _, dst := range []*int64{&e.id, &e.t, &e.binA} {
			v, n := binary.Varint(b[pos:])
			if n <= 0 {
				return e, 0, fmt.Errorf("derive: truncated interpTagged field")
			}
			*dst = v
			pos += n
		}
		row, n, err := value.DecodeRow(b[pos:])
		if err != nil {
			return e, 0, err
		}
		e.row = row
		return e, pos + n, nil
	},
}

// interpTaggedCWire carries the columnar interpolation join's tagged copies.
var interpTaggedCWire = &rdd.Wire[interpTaggedC]{
	Append: func(buf []byte, e interpTaggedC) []byte {
		buf = binary.AppendUvarint(buf, e.kh)
		buf = binary.AppendVarint(buf, e.id)
		buf = binary.AppendVarint(buf, e.t)
		buf = binary.AppendVarint(buf, e.binA)
		buf = binary.AppendVarint(buf, e.binSelf)
		buf = append(buf, e.tag)
		return e.row.AppendBinary(buf)
	},
	Decode: func(b []byte) (interpTaggedC, int, error) {
		var e interpTaggedC
		kh, pos := binary.Uvarint(b)
		if pos <= 0 {
			return e, 0, fmt.Errorf("derive: truncated interpTaggedC hash")
		}
		e.kh = kh
		for _, dst := range []*int64{&e.id, &e.t, &e.binA, &e.binSelf} {
			v, n := binary.Varint(b[pos:])
			if n <= 0 {
				return e, 0, fmt.Errorf("derive: truncated interpTaggedC field")
			}
			*dst = v
			pos += n
		}
		if pos >= len(b) {
			return e, 0, fmt.Errorf("derive: truncated interpTaggedC tag")
		}
		e.tag = b[pos]
		pos++
		row, n, err := value.DecodeRow(b[pos:])
		if err != nil {
			return e, 0, err
		}
		e.row = row
		return e, pos + n, nil
	},
}

// interpCandWire carries candidate pairs into the regroup-by-left-id
// exchange (shared by the row and columnar interpolation paths).
var interpCandWire = &rdd.Wire[interpCand]{
	Append: func(buf []byte, c interpCand) []byte {
		buf = binary.AppendVarint(buf, c.id)
		buf = binary.AppendVarint(buf, c.lt)
		buf = binary.AppendVarint(buf, c.rt)
		buf = c.lrow.AppendBinary(buf)
		return c.rrow.AppendBinary(buf)
	},
	Decode: func(b []byte) (interpCand, int, error) {
		var c interpCand
		pos := 0
		for _, dst := range []*int64{&c.id, &c.lt, &c.rt} {
			v, n := binary.Varint(b[pos:])
			if n <= 0 {
				return c, 0, fmt.Errorf("derive: truncated interpCand field")
			}
			*dst = v
			pos += n
		}
		lrow, n, err := value.DecodeRow(b[pos:])
		if err != nil {
			return c, 0, err
		}
		pos += n
		rrow, n, err := value.DecodeRow(b[pos:])
		if err != nil {
			return c, 0, err
		}
		c.lrow, c.rrow = lrow, rrow
		return c, pos + n, nil
	},
}

func appendWireString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func decodeWireString(b []byte) (string, int, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 || l > uint64(len(b)-n) {
		return "", 0, fmt.Errorf("derive: truncated wire string")
	}
	return string(b[n : n+int(l)]), n + int(l), nil
}
