package derive

import (
	"scrubjay/internal/dataset"
	"scrubjay/internal/frame"
	"scrubjay/internal/rdd"
	"scrubjay/internal/value"
)

// Vectorized front end of the interpolation join. The row path renders a
// composite string key per tagged copy (exact columns plus bin tag) and
// co-groups on it; here the exact columns hash once per batch as a vector
// (frame.HashOn), the bin tag folds into that hash with integer mixing, and
// the tagged copies exchange on the mixed hash with no string keys at all.
// Because the key is a hash rather than the values themselves, pairing
// groups entries into verified classes — same tag, same bin, equal exact
// columns — before any pair is emitted, so hash collisions cannot create
// pairs the row path would not.
//
// Candidate order replicates the row path's CoGroup semantics: classes
// emit in the order their first left entry arrives, each class left-major
// then right-major in arrival order. With one partition the candidate
// stream is identical to the row path's; across partitions only placement
// differs (hash-of-hash versus hash-of-string), so outputs agree as
// multisets.

// interpTaggedC is one tagged bin copy of a row in the columnar front end.
type interpTaggedC struct {
	kh      uint64 // mixed hash: exact columns ⊕ tag ⊕ bin index
	id      int64  // left rows only: unique id for regrouping
	t       int64  // instant, unix nanos
	binA    int64  // first-binning index, for pair dedup
	binSelf int64  // the bin this copy was emitted for
	tag     byte   // 'A' first binning, 'B' offset binning
	row     value.Row
}

// binKeyMix folds a row's exact-column hash with the binning tag and bin
// index into the exchange key for one tagged copy.
func binKeyMix(h uint64, tag byte, bin int64) uint64 {
	const prime = 1099511628211
	x := (h ^ uint64(tag)) * prime
	x = (x ^ uint64(bin)) * prime
	return x
}

// exactRowsEqual reports whether two rows agree on every exact-match join
// pair, converting right-side units as the row path's key rendering does.
func exactRowsEqual(l, r value.Row, lcols, rcols []string, convs []func(value.Value) value.Value) bool {
	for i := range lcols {
		rv := r.Get(rcols[i])
		if convs != nil && convs[i] != nil {
			rv = convs[i](rv)
		}
		if !l.Get(lcols[i]).Equal(rv) {
			return false
		}
	}
	return true
}

// tagFramesC emits the two tagged bin copies of every row in a columnar
// dataset. withIDs assigns the left side's unique per-row ids; ids follow
// the partition's row order, matching the row path's numbering. Each source
// row is boxed once and shared by both copies, mirroring how the row path's
// copies reference one input row.
func tagFramesC(frames *rdd.RDD[*frame.Frame], tCol string, exactCols []string,
	convs []func(value.Value) value.Value, w int64, withIDs bool, name string) *rdd.RDD[interpTaggedC] {

	return rdd.MapPartitions(frames, func(part int, fs []*frame.Frame) []interpTaggedC {
		var out []interpTaggedC
		base := 0
		for _, f := range fs {
			n := f.NumRows()
			if n == 0 {
				continue
			}
			eh := f.HashOn(exactCols, convs)
			tc := f.Col(tCol)
			typed := tc != nil && tc.Kind() == value.KindTime
			var tInts []int64
			if typed {
				tInts = tc.Ints()
			}
			for i := 0; i < n; i++ {
				var t int64
				if typed && tc.Present(i) {
					t = tInts[i]
				} else {
					var v value.Value
					if tc != nil {
						v = tc.Value(i)
					}
					if v.Kind() != value.KindTime {
						continue
					}
					t = v.TimeNanosVal()
				}
				binA := floorDiv(t, 2*w)
				binB := floorDiv(t+w, 2*w)
				var id int64
				if withIDs {
					id = int64(part)<<40 | int64(base+i)
				}
				r := f.RowAt(i)
				out = append(out,
					interpTaggedC{kh: binKeyMix(eh[i], 'A', binA), id: id, t: t,
						binA: binA, binSelf: binA, tag: 'A', row: r},
					interpTaggedC{kh: binKeyMix(eh[i], 'B', binB), id: id, t: t,
						binA: binA, binSelf: binB, tag: 'B', row: r})
			}
			base += n
		}
		return out
	}).WithName(name)
}

// interpCandidatesColumnar produces the in-window candidate pairs for two
// columnar datasets. The bins and dedup rule are the row path's (§5.3 dual
// binning); only the keying differs, so every pairing is verified against
// the conditions the string key encoded.
func interpCandidatesColumnar(left, right *dataset.Dataset, ltCol, rtCol string,
	leftExact, rightExact []string, convs []func(value.Value) value.Value, w int64) *rdd.RDD[interpCand] {

	leftTagged := tagFramesC(left.Frames(), ltCol, leftExact, nil, w, true, left.Name()+"|interp-tag")
	rightTagged := tagFramesC(right.Frames(), rtCol, rightExact, convs, w, false, right.Name()+"|interp-tag")

	numOut := left.Frames().NumPartitions()
	if n := right.Frames().NumPartitions(); n > numOut {
		numOut = n
	}
	split := func(_ int, in []interpTaggedC) [][]interpTaggedC {
		out := make([][]interpTaggedC, numOut)
		for _, e := range in {
			d := int(e.kh % uint64(numOut))
			out[d] = append(out[d], e)
		}
		return out
	}
	lx := rdd.ExchangePartitions(rdd.WithWire(leftTagged, interpTaggedCWire), numOut, leftTagged.Name(), split, nil)
	rx := rdd.ExchangePartitions(rdd.WithWire(rightTagged, interpTaggedCWire), numOut, rightTagged.Name(), split, nil)

	return rdd.ZipPartitions(lx, rx, func(part int, ls, rs []interpTaggedC) []interpCand {
		// Verified first-seen classes over the left entries: a class is one
		// (exact values, tag, bin) combination, exactly a row-path CoGroup
		// key. Hash buckets may hold several classes (collisions), so class
		// membership always re-checks the underlying values.
		type class struct{ ls, rs []int32 }
		var classes []class
		buckets := make(map[uint64][]int32, len(ls))
		for i := range ls {
			e := &ls[i]
			gid := int32(-1)
			for _, g := range buckets[e.kh] {
				rep := &ls[classes[g].ls[0]]
				if rep.tag == e.tag && rep.binSelf == e.binSelf &&
					exactRowsEqual(rep.row, e.row, leftExact, leftExact, nil) {
					gid = g
					break
				}
			}
			if gid < 0 {
				gid = int32(len(classes))
				classes = append(classes, class{})
				buckets[e.kh] = append(buckets[e.kh], gid)
			}
			classes[gid].ls = append(classes[gid].ls, int32(i))
		}
		for i := range rs {
			e := &rs[i]
			for _, g := range buckets[e.kh] {
				rep := &ls[classes[g].ls[0]]
				if rep.tag == e.tag && rep.binSelf == e.binSelf &&
					exactRowsEqual(rep.row, e.row, leftExact, rightExact, convs) {
					classes[g].rs = append(classes[g].rs, int32(i))
					break
				}
			}
		}
		var out []interpCand
		for _, c := range classes {
			if len(c.rs) == 0 {
				continue
			}
			for _, li := range c.ls {
				l := &ls[li]
				for _, ri := range c.rs {
					r := &rs[ri]
					dt := l.t - r.t
					if dt < 0 {
						dt = -dt
					}
					if dt > w {
						continue
					}
					// Dedup: pairs sharing a first-binning bin are emitted
					// there; the offset binning emits only the rest.
					if l.tag == 'B' && l.binA == r.binA {
						continue
					}
					out = append(out, interpCand{id: l.id, lrow: l.row, lt: l.t, rrow: r.row, rt: r.t})
				}
			}
		}
		return out
	}).WithName("interp-candidates")
}

// interpAssembleColumnar is the columnar downstream half: the same
// regroup-by-left-id as the row path's interpAssemble, but keyed on the id
// integer itself — no per-candidate string rendering, no string-keyed
// grouping. Group emission order (first-seen id, then sorted residual keys)
// matches interpAssemble exactly, so at one partition the two stages
// produce identical row streams.
func interpAssembleColumnar(cands *rdd.RDD[interpCand], rightResidual, lerpCols, nearestCols, dropRight []string) *rdd.RDD[value.Row] {
	numOut := cands.NumPartitions()
	ex := rdd.ExchangePartitions(rdd.WithWire(cands, interpCandWire), numOut, cands.Name(), func(_ int, in []interpCand) [][]interpCand {
		out := make([][]interpCand, numOut)
		for _, c := range in {
			d := int(uint64(c.id) % uint64(numOut))
			out[d] = append(out[d], c)
		}
		return out
	}, nil)
	return rdd.MapPartitions(ex, func(_ int, in []interpCand) []value.Row {
		byID := make(map[int64]int32, len(in))
		var groups [][]interpCand
		for _, c := range in {
			gid, ok := byID[c.id]
			if !ok {
				gid = int32(len(groups))
				byID[c.id] = gid
				groups = append(groups, nil)
			}
			groups[gid] = append(groups[gid], c)
		}
		var out []value.Row
		for _, cs := range groups {
			out = append(out, assembleLeftGroup(cs, rightResidual, lerpCols, nearestCols, dropRight)...)
		}
		return out
	})
}
