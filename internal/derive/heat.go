package derive

import (
	"fmt"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// Aisle labels used by the heat derivation.
const (
	AisleHot  = "hot"
	AisleCold = "cold"
)

// DeriveHeat computes instantaneous heat generation from paired hot- and
// cold-aisle temperature readings (§7.2): the facility places sensors on
// both aisles of each rack, and the hot-minus-cold temperature difference at
// one instant approximates the heat the rack is generating. Rows group by
// every domain except the aisle; each group with both aisle readings yields
// one row with a "heat" value column.
type DeriveHeat struct {
	// AisleColumn is the domain column on the rack_aisle dimension; ""
	// autodetects it.
	AisleColumn string
	// TempColumn is the temperature value column; "" autodetects it.
	TempColumn string
	// As names the output column; defaults to "heat".
	As string
}

func init() {
	RegisterTransformation("derive_heat", func(p map[string]any) (Transformation, error) {
		aisle, err := paramStringDefault(p, "aisle_column", "")
		if err != nil {
			return nil, err
		}
		temp, err := paramStringDefault(p, "temp_column", "")
		if err != nil {
			return nil, err
		}
		as, err := paramStringDefault(p, "as", "")
		if err != nil {
			return nil, err
		}
		return &DeriveHeat{AisleColumn: aisle, TempColumn: temp, As: as}, nil
	})
	registerCandidateGenerator(func(s semantics.Schema, dict *semantics.Dictionary, _ CandidateOptions) []Transformation {
		d := &DeriveHeat{}
		if _, _, err := d.resolve(s); err == nil {
			return []Transformation{d}
		}
		return nil
	})
}

// Name implements Transformation.
func (d *DeriveHeat) Name() string { return "derive_heat" }

// Params implements Transformation.
func (d *DeriveHeat) Params() map[string]any {
	p := map[string]any{}
	if d.AisleColumn != "" {
		p["aisle_column"] = d.AisleColumn
	}
	if d.TempColumn != "" {
		p["temp_column"] = d.TempColumn
	}
	if d.As != "" {
		p["as"] = d.As
	}
	return p
}

func (d *DeriveHeat) out() string {
	if d.As != "" {
		return d.As
	}
	return "heat"
}

func (d *DeriveHeat) resolve(in semantics.Schema) (aisleCol, tempCol string, err error) {
	aisleCol = d.AisleColumn
	if aisleCol == "" {
		cols := in.ColumnsOnDimension(semantics.Domain, "rack_aisle")
		if len(cols) != 1 {
			return "", "", fmt.Errorf("derive_heat: need exactly one rack_aisle domain column, found %d", len(cols))
		}
		aisleCol = cols[0]
	} else if e, ok := in[aisleCol]; !ok || e.Relation != semantics.Domain {
		return "", "", fmt.Errorf("derive_heat: column %q is not a domain", aisleCol)
	}
	tempCol = d.TempColumn
	if tempCol == "" {
		cols := in.ColumnsOnDimension(semantics.Value, "temperature")
		if len(cols) != 1 {
			return "", "", fmt.Errorf("derive_heat: need exactly one temperature value column, found %d", len(cols))
		}
		tempCol = cols[0]
	} else if e, ok := in[tempCol]; !ok || e.Relation != semantics.Value || e.Dimension != "temperature" {
		return "", "", fmt.Errorf("derive_heat: column %q is not a temperature value", tempCol)
	}
	return aisleCol, tempCol, nil
}

// DeriveSchema implements Transformation: the aisle domain and temperature
// value are replaced by a heat value on the temperature_difference
// dimension.
func (d *DeriveHeat) DeriveSchema(in semantics.Schema, dict *semantics.Dictionary) (semantics.Schema, error) {
	aisleCol, tempCol, err := d.resolve(in)
	if err != nil {
		return nil, err
	}
	if _, exists := in[d.out()]; exists {
		return nil, fmt.Errorf("derive_heat: output column %q already exists", d.out())
	}
	out := in.Clone()
	delete(out, aisleCol)
	delete(out, tempCol)
	out[d.out()] = semantics.Entry{
		Relation:  semantics.Value,
		Dimension: "temperature_difference",
		Units:     "delta_celsius",
	}
	return out, nil
}

// Apply implements Transformation. Temperatures convert to kelvin before
// differencing (so mixed-unit inputs work); a kelvin difference equals a
// celsius difference. Groups with multiple readings per aisle average them;
// groups missing either aisle are dropped.
func (d *DeriveHeat) Apply(in *dataset.Dataset, dict *semantics.Dictionary) (*dataset.Dataset, error) {
	schema, err := d.DeriveSchema(in.Schema(), dict)
	if err != nil {
		return nil, err
	}
	aisleCol, tempCol, err := d.resolve(in.Schema())
	if err != nil {
		return nil, err
	}
	tempUnits := in.Schema()[tempCol].Units
	u := dict.Units
	var groupCols []string
	for _, c := range in.Schema().DomainColumns() {
		if c != aisleCol {
			groupCols = append(groupCols, c)
		}
	}
	out := d.out()
	grouped := rdd.GroupByKey(rdd.WithWire(in.Rows(), rowWire), func(r value.Row) string {
		return r.KeyStringOn(groupCols)
	})
	rows := rdd.FlatMap(grouped, func(g rdd.Group[value.Row]) []value.Row {
		var hotSum, coldSum float64
		var hotN, coldN int
		var base value.Row
		for _, r := range g.Items {
			t, ok := r.Get(tempCol).AsFloat()
			if !ok {
				continue
			}
			k, err := u.Convert(t, tempUnits, "kelvin")
			if err != nil {
				continue
			}
			switch r.Get(aisleCol).StrVal() {
			case AisleHot:
				hotSum += k
				hotN++
				if base == nil {
					base = r
				}
			case AisleCold:
				coldSum += k
				coldN++
			}
		}
		if hotN == 0 || coldN == 0 {
			return nil
		}
		heat := hotSum/float64(hotN) - coldSum/float64(coldN)
		nr := base.Without(aisleCol)
		delete(nr, tempCol)
		nr[out] = value.Float(heat)
		return []value.Row{nr}
	})
	name := in.Name() + "|derive_heat"
	return matchRepr(in, dataset.New(name, rows.WithName(name), schema)), nil
}
