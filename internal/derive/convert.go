package derive

import (
	"fmt"

	"scrubjay/internal/dataset"
	"scrubjay/internal/frame"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/units"
	"scrubjay/internal/value"
)

// ConvertUnits changes the units of a numeric column (§4.2: "seconds may be
// readily converted to minutes"). The dimension is unchanged; the value is
// rescaled through the unit dictionary.
type ConvertUnits struct {
	// Column is the column to convert.
	Column string
	// To is the target unit expression.
	To string
}

func init() {
	RegisterTransformation("convert_units", func(p map[string]any) (Transformation, error) {
		col, err := paramString(p, "column")
		if err != nil {
			return nil, err
		}
		to, err := paramString(p, "to")
		if err != nil {
			return nil, err
		}
		return &ConvertUnits{Column: col, To: to}, nil
	})
}

// Name implements Transformation.
func (c *ConvertUnits) Name() string { return "convert_units" }

// Params implements Transformation.
func (c *ConvertUnits) Params() map[string]any {
	return map[string]any{"column": c.Column, "to": c.To}
}

// DeriveSchema implements Transformation.
func (c *ConvertUnits) DeriveSchema(in semantics.Schema, dict *semantics.Dictionary) (semantics.Schema, error) {
	e, ok := in[c.Column]
	if !ok {
		return nil, fmt.Errorf("convert_units: no column %q", c.Column)
	}
	if e.Units == "datetime" || e.Units == "timespan" {
		return nil, fmt.Errorf("convert_units: column %q holds structural time values", c.Column)
	}
	if !dict.Units.Convertible(e.Units, c.To) {
		return nil, fmt.Errorf("convert_units: cannot convert %q from %q to %q", c.Column, e.Units, c.To)
	}
	out := in.Clone()
	e.Units = c.To
	out[c.Column] = e
	return out, nil
}

// Apply implements Transformation. Non-numeric and null cells pass through
// unchanged (identifier-unit columns have nothing to rescale).
func (c *ConvertUnits) Apply(in *dataset.Dataset, dict *semantics.Dictionary) (*dataset.Dataset, error) {
	schema, err := c.DeriveSchema(in.Schema(), dict)
	if err != nil {
		return nil, err
	}
	from := in.Schema()[c.Column].Units
	col, to := c.Column, c.To
	u := dict.Units
	name := fmt.Sprintf("%s|convert(%s->%s)", in.Name(), col, to)
	if in.IsColumnar() {
		frames := rdd.Map(in.Frames(), func(f *frame.Frame) *frame.Frame {
			return convertFrame(f, u, col, from, to)
		})
		return dataset.NewFrames(name, frames.WithName(name), schema), nil
	}
	rows := rdd.Map(in.Rows(), func(r value.Row) value.Row {
		v := r.Get(col)
		f, ok := v.AsFloat()
		if !ok || v.Kind() == value.KindTime {
			return r
		}
		conv, err := u.Convert(f, from, to)
		if err != nil {
			return r
		}
		return r.With(col, value.Float(conv))
	})
	return dataset.New(name, rows.WithName(name), schema), nil
}

// convertFrame rescales one batch's column. Float-typed columns convert as
// one dense vector (frame.ConvertColumn); any other storage falls back to
// the row path's per-cell rules — non-numeric, time, and unconvertible
// cells pass through unchanged.
func convertFrame(f *frame.Frame, u *units.Dict, col, from, to string) *frame.Frame {
	c := f.Col(col)
	if c == nil {
		return f
	}
	if cc, ok := frame.ConvertColumn(u, c, from, to); ok {
		return f.With(cc)
	}
	b := frame.NewBuilder(c.Name(), f.NumRows())
	for i := 0; i < f.NumRows(); i++ {
		if !c.Present(i) {
			continue
		}
		v := c.Value(i)
		if fv, ok := v.AsFloat(); ok && v.Kind() != value.KindTime {
			if conv, err := u.Convert(fv, from, to); err == nil {
				v = value.Float(conv)
			}
		}
		b.Set(i, v)
	}
	return f.With(b.Finish())
}

// DeriveRatio computes a new value column as the quotient of two existing
// value columns — the paper's example of "dividing instruction counts by
// elapsed times to obtain instruction rates" (§4.3).
type DeriveRatio struct {
	// Numerator and Denominator are value columns.
	Numerator   string
	Denominator string
	// As names the output column.
	As string
}

func init() {
	RegisterTransformation("derive_ratio", func(p map[string]any) (Transformation, error) {
		num, err := paramString(p, "numerator")
		if err != nil {
			return nil, err
		}
		den, err := paramString(p, "denominator")
		if err != nil {
			return nil, err
		}
		as, err := paramString(p, "as")
		if err != nil {
			return nil, err
		}
		return &DeriveRatio{Numerator: num, Denominator: den, As: as}, nil
	})
}

// Name implements Transformation.
func (d *DeriveRatio) Name() string { return "derive_ratio" }

// Params implements Transformation.
func (d *DeriveRatio) Params() map[string]any {
	return map[string]any{"numerator": d.Numerator, "denominator": d.Denominator, "as": d.As}
}

// DeriveSchema implements Transformation: the output is a value column on
// the composite dimension num/den with composite units.
func (d *DeriveRatio) DeriveSchema(in semantics.Schema, dict *semantics.Dictionary) (semantics.Schema, error) {
	num, ok := in[d.Numerator]
	if !ok || num.Relation != semantics.Value {
		return nil, fmt.Errorf("derive_ratio: %q is not a value column", d.Numerator)
	}
	den, ok := in[d.Denominator]
	if !ok || den.Relation != semantics.Value {
		return nil, fmt.Errorf("derive_ratio: %q is not a value column", d.Denominator)
	}
	if _, exists := in[d.As]; exists {
		return nil, fmt.Errorf("derive_ratio: output column %q already exists", d.As)
	}
	if d.As == "" {
		return nil, fmt.Errorf("derive_ratio: output column name required")
	}
	out := in.Clone()
	out[d.As] = semantics.Entry{
		Relation:  semantics.Value,
		Dimension: num.Dimension + "/" + den.Dimension,
		Units:     num.Units + "/" + den.Units,
	}
	return out, nil
}

// Apply implements Transformation. Rows where either operand is missing or
// the denominator is zero get a null ratio.
func (d *DeriveRatio) Apply(in *dataset.Dataset, dict *semantics.Dictionary) (*dataset.Dataset, error) {
	schema, err := d.DeriveSchema(in.Schema(), dict)
	if err != nil {
		return nil, err
	}
	num, den, as := d.Numerator, d.Denominator, d.As
	rows := rdd.Map(in.Rows(), func(r value.Row) value.Row {
		q, err := value.Div(r.Get(num), r.Get(den))
		if err != nil {
			return r
		}
		return r.With(as, q)
	})
	name := fmt.Sprintf("%s|ratio(%s/%s)", in.Name(), num, den)
	return matchRepr(in, dataset.New(name, rows.WithName(name), schema)), nil
}
