// Package dataset binds the data-parallel substrate to ScrubJay's semantic
// layer. A Dataset is the paper's ScrubJayRDD (§4.1): a distributed
// collection of sparse, heterogeneous named-tuple rows together with the
// Schema describing what each column means. All derivations operate on
// Datasets; the derivation engine operates on their Schemas alone.
package dataset

import (
	"fmt"
	"sort"
	"strings"

	"scrubjay/internal/frame"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/units"
	"scrubjay/internal/value"
)

// Dataset is a semantically annotated, partitioned collection of rows. It
// carries one of two physical representations — row-at-a-time partitions
// ([]value.Row) or columnar batches (one *frame.Frame per partition) — and
// derives the other lazily on demand. Derivations preserve the input
// representation (columnar in, columnar out), so a plan executed over a
// columnar catalog stays columnar end-to-end; either way every observable
// row is identical, which the derivation property suites assert
// bit-for-bit.
type Dataset struct {
	name   string
	rows   *rdd.RDD[value.Row]    // nil when born columnar
	frames *rdd.RDD[*frame.Frame] // nil when born row-form
	schema semantics.Schema
}

// New wraps an RDD of rows with its schema.
func New(name string, rows *rdd.RDD[value.Row], schema semantics.Schema) *Dataset {
	return &Dataset{name: name, rows: rows, schema: schema}
}

// NewFrames wraps an RDD of columnar batches (one frame per partition
// element) with its schema.
func NewFrames(name string, frames *rdd.RDD[*frame.Frame], schema semantics.Schema) *Dataset {
	return &Dataset{name: name, frames: frames, schema: schema}
}

// FromRows distributes a row slice over numParts partitions.
func FromRows(ctx *rdd.Context, name string, rows []value.Row, schema semantics.Schema, numParts int) *Dataset {
	return New(name, rdd.Parallelize(ctx, rows, numParts).WithName(name), schema)
}

// FromFrames wraps pre-built columnar batches, one partition per frame.
// The frames must be treated as immutable from then on; this is how the
// server shares one set of catalog frames across concurrent requests.
func FromFrames(ctx *rdd.Context, name string, frames []*frame.Frame, schema semantics.Schema) *Dataset {
	parts := make([][]*frame.Frame, len(frames))
	for i, f := range frames {
		parts[i] = []*frame.Frame{f}
	}
	return NewFrames(name, rdd.FromPartitions(ctx, parts).WithName(name), schema)
}

// FromRowsColumnar distributes a row slice over numParts partitions and
// converts each partition into one columnar batch.
func FromRowsColumnar(ctx *rdd.Context, name string, rows []value.Row, schema semantics.Schema, numParts int) *Dataset {
	src := rdd.Parallelize(ctx, rows, numParts)
	frames := rdd.MapPartitions(src, func(_ int, in []value.Row) []*frame.Frame {
		return []*frame.Frame{frame.FromRows(in)}
	})
	return NewFrames(name, frames.WithName(name), schema)
}

// Name returns the dataset's name.
func (d *Dataset) Name() string { return d.name }

// WithName returns the dataset relabeled (data and schema shared).
func (d *Dataset) WithName(name string) *Dataset {
	return &Dataset{name: name, rows: d.rows, frames: d.frames, schema: d.schema}
}

// IsColumnar reports whether the dataset's native representation is
// columnar batches.
func (d *Dataset) IsColumnar() bool { return d.frames != nil }

// Rows returns the dataset as an RDD of boundary-format rows. For a
// columnar dataset the rows are unboxed from the batches lazily, partition
// by partition, preserving order.
func (d *Dataset) Rows() *rdd.RDD[value.Row] {
	if d.rows != nil {
		return d.rows
	}
	out := rdd.FlatMap(d.frames, func(f *frame.Frame) []value.Row { return f.ToRows() })
	return out.WithName(d.name + "|unbox")
}

// Frames returns the dataset as an RDD of columnar batches (one per input
// partition). For a row-form dataset each partition is packed into one
// frame lazily.
func (d *Dataset) Frames() *rdd.RDD[*frame.Frame] {
	if d.frames != nil {
		return d.frames
	}
	out := rdd.MapPartitions(d.rows, func(_ int, in []value.Row) []*frame.Frame {
		return []*frame.Frame{frame.FromRows(in)}
	})
	return out.WithName(d.name + "|box")
}

// Columnar returns the dataset in columnar representation (itself if it
// already is). A row-form dataset keeps its row RDD alongside the lazy
// frame view, so row-level consumers (Count, Collect, streaming in row
// mode) never pay the row→column pivot just because a derivation marked
// the result columnar.
func (d *Dataset) Columnar() *Dataset {
	if d.frames != nil {
		return d
	}
	return &Dataset{name: d.name, rows: d.rows, frames: d.Frames(), schema: d.schema}
}

// Schema returns the dataset's schema. Callers must not mutate it.
func (d *Dataset) Schema() semantics.Schema { return d.schema }

// Context returns the execution context.
func (d *Dataset) Context() *rdd.Context {
	if d.rows != nil {
		return d.rows.Context()
	}
	return d.frames.Context()
}

// Collect materializes all rows.
func (d *Dataset) Collect() []value.Row { return d.Rows().Collect() }

// Count returns the number of rows. A dataset that carries rows counts
// them directly; a purely columnar one counts batch lengths without
// unboxing rows.
func (d *Dataset) Count() int64 {
	if d.rows != nil {
		return d.rows.Count()
	}
	n, _ := rdd.Reduce(rdd.Map(d.frames, func(f *frame.Frame) int64 {
		return int64(f.NumRows())
	}), func(a, b int64) int64 { return a + b })
	return n
}

// Cache marks the underlying RDD for in-memory reuse.
func (d *Dataset) Cache() *Dataset {
	if d.frames != nil {
		d.frames.Cache()
	} else {
		d.rows.Cache()
	}
	return d
}

// Select projects the dataset onto the named columns; the schema shrinks
// accordingly. Unknown columns are an error.
func (d *Dataset) Select(cols ...string) (*Dataset, error) {
	ns := make(semantics.Schema, len(cols))
	for _, c := range cols {
		e, ok := d.schema[c]
		if !ok {
			return nil, fmt.Errorf("dataset %q: no column %q", d.name, c)
		}
		ns[c] = e
	}
	cols = append([]string(nil), cols...)
	name := d.name + "|select"
	if d.frames != nil {
		out := rdd.Map(d.frames, func(f *frame.Frame) *frame.Frame { return f.Select(cols) })
		return NewFrames(name, out.WithName(name), ns), nil
	}
	out := rdd.Map(d.rows, func(r value.Row) value.Row { return r.Project(cols...) })
	return New(name, out.WithName(name), ns), nil
}

// Where filters rows by a predicate; the schema is unchanged. On a
// columnar dataset the predicate runs over boxed rows (frame.MaskRows) and
// the kept rows are gathered into new batches.
func (d *Dataset) Where(pred func(value.Row) bool) *Dataset {
	name := d.name + "|where"
	if d.frames != nil {
		out := rdd.Map(d.frames, func(f *frame.Frame) *frame.Frame {
			return f.FilterMask(frame.MaskRows(f, pred))
		})
		return NewFrames(name, out.WithName(name), d.schema)
	}
	out := rdd.Filter(d.rows, pred).WithName(name)
	return New(name, out, d.schema)
}

// SortedBy returns rows totally ordered by the given columns (materializes).
func (d *Dataset) SortedBy(cols ...string) []value.Row {
	rows := d.Collect()
	sort.SliceStable(rows, func(i, j int) bool {
		for _, c := range cols {
			cmp := rows[i].Get(c).Compare(rows[j].Get(c))
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return rows
}

// KindForUnits returns the value.Kind a column with the given units is
// expected to hold, and whether there is such an expectation.
func KindForUnits(u string) (value.Kind, bool) {
	if u == "datetime" {
		return value.KindTime, true
	}
	if u == "timespan" {
		return value.KindSpan, true
	}
	if _, ok := units.IsList(u); ok {
		return value.KindList, true
	}
	return value.KindNull, false
}

// Validate checks the schema against the dictionary and every row against
// the schema: rows may not carry columns absent from the schema, and
// structurally typed units (datetime, timespan, lists) must hold the
// matching value kind. It materializes the dataset.
func (d *Dataset) Validate(dict *semantics.Dictionary) error {
	if err := d.schema.Validate(dict); err != nil {
		return fmt.Errorf("dataset %q: %w", d.name, err)
	}
	type rowErr struct{ msg string }
	bad := rdd.FlatMap(d.Rows(), func(r value.Row) []rowErr {
		for col, v := range r {
			e, ok := d.schema[col]
			if !ok {
				return []rowErr{{fmt.Sprintf("row has column %q absent from schema", col)}}
			}
			if v.IsNull() {
				continue
			}
			if want, constrained := KindForUnits(e.Units); constrained && v.Kind() != want {
				return []rowErr{{fmt.Sprintf("column %q: units %q require kind %s, got %s",
					col, e.Units, want, v.Kind())}}
			}
		}
		return nil
	})
	errs := bad.Take(1)
	if len(errs) > 0 {
		return fmt.Errorf("dataset %q: %s", d.name, errs[0].msg)
	}
	return nil
}

// Show renders up to n rows as an aligned table for terminal output.
func (d *Dataset) Show(n int) string {
	rows := d.Rows().Take(n)
	cols := d.schema.Columns()
	width := make([]int, len(cols))
	for i, c := range cols {
		width[i] = len(c)
	}
	cells := make([][]string, len(rows))
	for ri, r := range rows {
		cells[ri] = make([]string, len(cols))
		for ci, c := range cols {
			s := r.Get(c).String()
			cells[ri][ci] = s
			if len(s) > width[ci] {
				width[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "dataset %q (%d shown)\n", d.name, len(rows))
	for i, c := range cols {
		fmt.Fprintf(&b, "%-*s  ", width[i], c)
	}
	b.WriteByte('\n')
	for ri := range cells {
		for ci := range cols {
			fmt.Fprintf(&b, "%-*s  ", width[ci], cells[ri][ci])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
