// Package dataset binds the data-parallel substrate to ScrubJay's semantic
// layer. A Dataset is the paper's ScrubJayRDD (§4.1): a distributed
// collection of sparse, heterogeneous named-tuple rows together with the
// Schema describing what each column means. All derivations operate on
// Datasets; the derivation engine operates on their Schemas alone.
package dataset

import (
	"fmt"
	"sort"
	"strings"

	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/units"
	"scrubjay/internal/value"
)

// Dataset is a semantically annotated, partitioned collection of rows.
type Dataset struct {
	name   string
	rows   *rdd.RDD[value.Row]
	schema semantics.Schema
}

// New wraps an RDD of rows with its schema.
func New(name string, rows *rdd.RDD[value.Row], schema semantics.Schema) *Dataset {
	return &Dataset{name: name, rows: rows, schema: schema}
}

// FromRows distributes a row slice over numParts partitions.
func FromRows(ctx *rdd.Context, name string, rows []value.Row, schema semantics.Schema, numParts int) *Dataset {
	return New(name, rdd.Parallelize(ctx, rows, numParts).WithName(name), schema)
}

// Name returns the dataset's name.
func (d *Dataset) Name() string { return d.name }

// WithName returns the dataset relabeled (rows and schema shared).
func (d *Dataset) WithName(name string) *Dataset {
	return &Dataset{name: name, rows: d.rows, schema: d.schema}
}

// Rows returns the underlying RDD.
func (d *Dataset) Rows() *rdd.RDD[value.Row] { return d.rows }

// Schema returns the dataset's schema. Callers must not mutate it.
func (d *Dataset) Schema() semantics.Schema { return d.schema }

// Context returns the execution context.
func (d *Dataset) Context() *rdd.Context { return d.rows.Context() }

// Collect materializes all rows.
func (d *Dataset) Collect() []value.Row { return d.rows.Collect() }

// Count returns the number of rows.
func (d *Dataset) Count() int64 { return d.rows.Count() }

// Cache marks the underlying RDD for in-memory reuse.
func (d *Dataset) Cache() *Dataset {
	d.rows.Cache()
	return d
}

// Select projects the dataset onto the named columns; the schema shrinks
// accordingly. Unknown columns are an error.
func (d *Dataset) Select(cols ...string) (*Dataset, error) {
	ns := make(semantics.Schema, len(cols))
	for _, c := range cols {
		e, ok := d.schema[c]
		if !ok {
			return nil, fmt.Errorf("dataset %q: no column %q", d.name, c)
		}
		ns[c] = e
	}
	cols = append([]string(nil), cols...)
	out := rdd.Map(d.rows, func(r value.Row) value.Row { return r.Project(cols...) })
	return New(d.name+"|select", out.WithName(d.name+"|select"), ns), nil
}

// Where filters rows by a predicate; the schema is unchanged.
func (d *Dataset) Where(pred func(value.Row) bool) *Dataset {
	out := rdd.Filter(d.rows, pred).WithName(d.name + "|where")
	return New(d.name+"|where", out, d.schema)
}

// SortedBy returns rows totally ordered by the given columns (materializes).
func (d *Dataset) SortedBy(cols ...string) []value.Row {
	rows := d.Collect()
	sort.SliceStable(rows, func(i, j int) bool {
		for _, c := range cols {
			cmp := rows[i].Get(c).Compare(rows[j].Get(c))
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return rows
}

// KindForUnits returns the value.Kind a column with the given units is
// expected to hold, and whether there is such an expectation.
func KindForUnits(u string) (value.Kind, bool) {
	if u == "datetime" {
		return value.KindTime, true
	}
	if u == "timespan" {
		return value.KindSpan, true
	}
	if _, ok := units.IsList(u); ok {
		return value.KindList, true
	}
	return value.KindNull, false
}

// Validate checks the schema against the dictionary and every row against
// the schema: rows may not carry columns absent from the schema, and
// structurally typed units (datetime, timespan, lists) must hold the
// matching value kind. It materializes the dataset.
func (d *Dataset) Validate(dict *semantics.Dictionary) error {
	if err := d.schema.Validate(dict); err != nil {
		return fmt.Errorf("dataset %q: %w", d.name, err)
	}
	type rowErr struct{ msg string }
	bad := rdd.FlatMap(d.rows, func(r value.Row) []rowErr {
		for col, v := range r {
			e, ok := d.schema[col]
			if !ok {
				return []rowErr{{fmt.Sprintf("row has column %q absent from schema", col)}}
			}
			if v.IsNull() {
				continue
			}
			if want, constrained := KindForUnits(e.Units); constrained && v.Kind() != want {
				return []rowErr{{fmt.Sprintf("column %q: units %q require kind %s, got %s",
					col, e.Units, want, v.Kind())}}
			}
		}
		return nil
	})
	errs := bad.Take(1)
	if len(errs) > 0 {
		return fmt.Errorf("dataset %q: %s", d.name, errs[0].msg)
	}
	return nil
}

// Show renders up to n rows as an aligned table for terminal output.
func (d *Dataset) Show(n int) string {
	rows := d.rows.Take(n)
	cols := d.schema.Columns()
	width := make([]int, len(cols))
	for i, c := range cols {
		width[i] = len(c)
	}
	cells := make([][]string, len(rows))
	for ri, r := range rows {
		cells[ri] = make([]string, len(cols))
		for ci, c := range cols {
			s := r.Get(c).String()
			cells[ri][ci] = s
			if len(s) > width[ci] {
				width[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "dataset %q (%d shown)\n", d.name, len(rows))
	for i, c := range cols {
		fmt.Fprintf(&b, "%-*s  ", width[i], c)
	}
	b.WriteByte('\n')
	for ri := range cells {
		for ci := range cols {
			fmt.Fprintf(&b, "%-*s  ", width[ci], cells[ri][ci])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
