package dataset

import (
	"strings"
	"testing"

	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

func tempSchema() semantics.Schema {
	return semantics.NewSchema(
		"timestamp", semantics.TimeDomain(),
		"node_id", semantics.IDDomain("compute_node"),
		"node_temp", semantics.ValueEntry("temperature", "degrees_celsius"),
	)
}

func tempRows() []value.Row {
	return []value.Row{
		value.NewRow("timestamp", value.TimeNanos(1e9), "node_id", value.Str("n1"), "node_temp", value.Float(60)),
		value.NewRow("timestamp", value.TimeNanos(2e9), "node_id", value.Str("n2"), "node_temp", value.Float(65)),
		value.NewRow("timestamp", value.TimeNanos(3e9), "node_id", value.Str("n1"), "node_temp", value.Float(70)),
	}
}

func TestFromRowsBasics(t *testing.T) {
	ctx := rdd.NewContext(2)
	d := FromRows(ctx, "temps", tempRows(), tempSchema(), 2)
	if d.Name() != "temps" {
		t.Errorf("Name = %q", d.Name())
	}
	if d.Count() != 3 {
		t.Errorf("Count = %d", d.Count())
	}
	if d.Context() != ctx {
		t.Error("Context identity")
	}
	if len(d.Schema()) != 3 {
		t.Errorf("schema size = %d", len(d.Schema()))
	}
	d2 := d.WithName("renamed")
	if d2.Name() != "renamed" || d2.Count() != 3 {
		t.Error("WithName")
	}
}

func TestSelect(t *testing.T) {
	ctx := rdd.NewContext(2)
	d := FromRows(ctx, "temps", tempRows(), tempSchema(), 2)
	sel, err := d.Select("node_id", "node_temp")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Schema()) != 2 {
		t.Errorf("selected schema = %v", sel.Schema())
	}
	for _, r := range sel.Collect() {
		if r.Has("timestamp") {
			t.Errorf("row still has timestamp: %v", r)
		}
	}
	if _, err := d.Select("nope"); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestWhere(t *testing.T) {
	ctx := rdd.NewContext(2)
	d := FromRows(ctx, "temps", tempRows(), tempSchema(), 2)
	hot := d.Where(func(r value.Row) bool {
		f, _ := r.Get("node_temp").AsFloat()
		return f >= 65
	})
	if hot.Count() != 2 {
		t.Errorf("filtered count = %d", hot.Count())
	}
}

func TestSortedBy(t *testing.T) {
	ctx := rdd.NewContext(2)
	d := FromRows(ctx, "temps", tempRows(), tempSchema(), 3)
	rows := d.SortedBy("node_id", "timestamp")
	if rows[0].Get("node_id").StrVal() != "n1" || rows[2].Get("node_id").StrVal() != "n2" {
		t.Errorf("sorted order wrong: %v", rows)
	}
	if rows[0].Get("timestamp").TimeNanosVal() > rows[1].Get("timestamp").TimeNanosVal() {
		t.Error("secondary sort wrong")
	}
}

func TestValidate(t *testing.T) {
	ctx := rdd.NewContext(2)
	dict := semantics.DefaultDictionary()
	good := FromRows(ctx, "temps", tempRows(), tempSchema(), 2)
	if err := good.Validate(dict); err != nil {
		t.Errorf("valid dataset: %v", err)
	}

	// Row with a column not in the schema.
	extra := append(tempRows(), value.NewRow("mystery", value.Int(1)))
	bad1 := FromRows(ctx, "bad1", extra, tempSchema(), 2)
	if err := bad1.Validate(dict); err == nil {
		t.Error("extra column should fail validation")
	}

	// Wrong kind for datetime units.
	wrongKind := []value.Row{value.NewRow("timestamp", value.Str("notatime"))}
	bad2 := FromRows(ctx, "bad2", wrongKind, tempSchema(), 1)
	if err := bad2.Validate(dict); err == nil {
		t.Error("wrong kind should fail validation")
	}

	// Invalid schema.
	bad3 := FromRows(ctx, "bad3", nil, semantics.NewSchema("x", semantics.DomainEntry("bogus", "identifier")), 1)
	if err := bad3.Validate(dict); err == nil {
		t.Error("invalid schema should fail validation")
	}

	// Nulls are allowed anywhere.
	nulls := []value.Row{value.NewRow("timestamp", value.Null())}
	ok := FromRows(ctx, "nulls", nulls, tempSchema(), 1)
	if err := ok.Validate(dict); err != nil {
		t.Errorf("nulls should validate: %v", err)
	}
}

func TestKindForUnits(t *testing.T) {
	if k, ok := KindForUnits("datetime"); !ok || k != value.KindTime {
		t.Error("datetime")
	}
	if k, ok := KindForUnits("timespan"); !ok || k != value.KindSpan {
		t.Error("timespan")
	}
	if k, ok := KindForUnits("list<identifier>"); !ok || k != value.KindList {
		t.Error("list")
	}
	if _, ok := KindForUnits("watts"); ok {
		t.Error("watts should be unconstrained")
	}
}

func TestShow(t *testing.T) {
	ctx := rdd.NewContext(1)
	d := FromRows(ctx, "temps", tempRows(), tempSchema(), 1)
	out := d.Show(2)
	if !strings.Contains(out, "node_temp") || !strings.Contains(out, "n1") {
		t.Errorf("Show output missing content:\n%s", out)
	}
	if !strings.Contains(out, "2 shown") {
		t.Errorf("Show should report row count:\n%s", out)
	}
}

func TestCache(t *testing.T) {
	ctx := rdd.NewContext(1)
	d := FromRows(ctx, "temps", tempRows(), tempSchema(), 1).Cache()
	if d.Count() != 3 || d.Count() != 3 {
		t.Error("cached dataset count")
	}
}
