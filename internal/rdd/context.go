// Package rdd is ScrubJay's data-parallel substrate: a from-scratch,
// in-memory reimplementation of the resilient-distributed-dataset execution
// model the paper builds on (§4.1, §5.3). An RDD is a lazily evaluated,
// partitioned collection with lineage: narrow operations (map, filter,
// flatMap) fuse into a single stage per partition, while shuffle operations
// (groupByKey, coGroup, repartition) force a stage boundary that exchanges
// rows between partitions.
//
// Execution happens on a worker pool inside one process. Stage and task
// observability is opt-in: when the Context carries a trace scope (a
// *obs.Span installed via SetSpan, or the private collector ResetMetrics
// creates), every stage emits a span and every task a timed child span,
// and the recorded task log can be replayed onto a simulated cluster (see
// Cluster and SimulateMakespan) to study scaling behaviour on hardware
// that lacks the paper's 10-node, 32-core data cluster. Without a scope,
// tasks run with zero recording overhead — no clock reads, no allocation
// (the nil-span fast path; see internal/obs). The computed results are
// always real; only the placement of measured task costs onto parallel
// executors is simulated.
package rdd

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"scrubjay/internal/obs"
)

// Context owns the worker pool and the trace scope for a set of RDDs.
type Context struct {
	workers int
	// goCtx, when non-nil, bounds every action run through this Context:
	// once it is done, workers stop picking up new partitions and the
	// in-flight action aborts with a *Canceled panic (see Guard).
	goCtx context.Context

	// placement, when non-nil, routes wire-eligible shuffle exchanges
	// through a physical cluster (see Placement and WithPlacement).
	placement Placement

	// scope is the current span stages record under (nil = untraced).
	// mroot is the private collector root ResetMetrics installs, the tree
	// SnapshotMetrics derives Metrics from.
	scope atomic.Pointer[obs.Span]
	mroot atomic.Pointer[obs.Span]
}

// NewContext returns a context executing with the given number of parallel
// workers; workers <= 0 selects GOMAXPROCS. A fresh Context is untraced:
// stages record nothing until SetSpan or ResetMetrics installs a scope.
func NewContext(workers int) *Context {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Context{workers: workers}
}

// WithGoContext returns a new execution Context with the same worker count
// bound to ctx: actions on RDDs built from the returned Context stop
// dispatching partitions as soon as ctx is cancelled or its deadline
// expires, and abort with a *Canceled panic once in-flight tasks drain.
// Recover the panic into an error with Guard (pipeline.Execute does this
// for plan execution). The current trace scope carries over; the metrics
// collector does not (call ResetMetrics on the new Context to collect).
func (c *Context) WithGoContext(ctx context.Context) *Context {
	nc := &Context{workers: c.workers, goCtx: ctx, placement: c.placement}
	nc.scope.Store(c.scope.Load())
	return nc
}

// Workers reports the configured real parallelism.
func (c *Context) Workers() int { return c.workers }

// Span returns the current trace scope (nil when untraced).
func (c *Context) Span() *obs.Span { return c.scope.Load() }

// SetSpan installs sp as the trace scope: subsequent stages record as
// children of sp, tasks as timed children of their stage, all on sp's
// clock. Pass nil to disable recording. The serving layer scopes each
// request's execute span this way; pipeline.Execute re-scopes to the
// active derivation step around each Apply.
func (c *Context) SetSpan(sp *obs.Span) { c.scope.Store(sp) }

// Err reports the bound Go context's error: nil while execution may
// proceed, non-nil once the Context is cancelled or past its deadline.
func (c *Context) Err() error {
	if c.goCtx == nil {
		return nil
	}
	return c.goCtx.Err()
}

// Canceled is the error (and internal panic payload) for an action aborted
// because the Context's bound Go context ended. Workers check between
// partitions, so a cancelled Collect/Count returns promptly instead of
// burning cores for a client that is no longer listening.
type Canceled struct {
	// Cause is the Go context error (context.Canceled or
	// context.DeadlineExceeded).
	Cause error
}

func (c *Canceled) Error() string { return fmt.Sprintf("rdd: execution canceled: %v", c.Cause) }

// Unwrap exposes the context error to errors.Is/As.
func (c *Canceled) Unwrap() error { return c.Cause }

// Guard runs fn, converting the cancellation abort of a bound Context (or
// the failure abort of a distributed exchange) into an ordinary error. Use
// it around actions (Collect, Count, ...) on RDDs whose Context came from
// WithGoContext or WithPlacement:
//
//	rows, err := rdd.Guard(func() []value.Row { return ds.Collect() })
//
// Other panics propagate unchanged.
func Guard[T any](fn func() T) (out T, err error) {
	defer func() {
		if p := recover(); p != nil {
			switch e := p.(type) {
			case *Canceled:
				err = e
			case *ExecFailure:
				err = e
			default:
				panic(p)
			}
		}
	}()
	out = fn()
	return out, nil
}

// TaskMetrics records one executed task (one partition of one stage).
type TaskMetrics struct {
	Partition int
	Duration  time.Duration
	RowsOut   int64
}

// StageMetrics records one executed stage.
type StageMetrics struct {
	ID   int
	Name string
	// Shuffle is true when the stage ended in a partition exchange.
	Shuffle bool
	// ShuffleRows is the number of rows exchanged at the stage boundary.
	ShuffleRows int64
	Tasks       []TaskMetrics
}

// TotalTaskTime sums the durations of all tasks in the stage.
func (s StageMetrics) TotalTaskTime() time.Duration {
	var t time.Duration
	for _, task := range s.Tasks {
		t += task.Duration
	}
	return t
}

// Metrics is a snapshot of the stages executed so far.
type Metrics struct {
	Stages []StageMetrics
}

// TotalTaskTime sums task durations across all stages.
func (m Metrics) TotalTaskTime() time.Duration {
	var t time.Duration
	for _, s := range m.Stages {
		t += s.TotalTaskTime()
	}
	return t
}

// TotalShuffleRows sums shuffled rows across all stages.
func (m Metrics) TotalShuffleRows() int64 {
	var n int64
	for _, s := range m.Stages {
		n += s.ShuffleRows
	}
	return n
}

// ResetMetrics installs a fresh metrics collector: a private wall-clock
// trace whose stage/task spans SnapshotMetrics later converts to Metrics.
// The span tree is the single source of truth for task bookkeeping — there
// is no parallel stage log. Collection is opt-in: a Context that never
// called ResetMetrics (or SetSpan) records nothing and pays no timing
// cost. Call between benchmark runs to discard earlier stages.
func (c *Context) ResetMetrics() {
	tr := obs.NewTracer("rdd-metrics", nil)
	root := tr.Start(obs.KindExec, "rdd-metrics")
	c.mroot.Store(root)
	c.scope.Store(root)
}

// SnapshotMetrics derives the stage log recorded since ResetMetrics from
// the collector's span tree. Empty when ResetMetrics was never called.
func (c *Context) SnapshotMetrics() Metrics {
	return MetricsFromSpan(c.mroot.Load())
}

// MetricsFromSpan derives stage/task Metrics from a recorded span tree —
// the bridge from execution traces to the simulated-cluster scheduler
// (SimulateMakespan). Stage spans become StageMetrics in depth-first
// creation order; their task children become TaskMetrics.
func MetricsFromSpan(sp *obs.Span) Metrics {
	var m Metrics
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		children := s.Children()
		if s.Kind() == obs.KindStage {
			st := StageMetrics{
				ID:          len(m.Stages),
				Name:        s.Name(),
				Shuffle:     s.AttrBool(obs.AttrShuffle),
				ShuffleRows: s.AttrInt(obs.AttrShuffleRows),
			}
			for _, ch := range children {
				if ch.Kind() == obs.KindTask {
					st.Tasks = append(st.Tasks, TaskMetrics{
						Partition: int(ch.AttrInt(obs.AttrPartition)),
						Duration:  ch.Duration(),
						RowsOut:   ch.AttrInt(obs.AttrRowsOut),
					})
				}
			}
			m.Stages = append(m.Stages, st)
		}
		for _, ch := range children {
			walk(ch)
		}
	}
	if sp != nil {
		walk(sp)
	}
	return m
}

// recordShuffle emits a completed shuffle-boundary stage span (no task
// children) under the current scope — the stage-boundary record whose
// ShuffleRows feed SimulateMakespan's transfer model. No-op when untraced.
func (c *Context) recordShuffle(name string, rows int64) {
	sp := c.Span()
	if sp == nil {
		return
	}
	st := sp.Child(obs.KindStage, name)
	st.SetBool(obs.AttrShuffle, true)
	st.SetInt(obs.AttrShuffleRows, rows)
	st.End()
}

// taskTiming is one task's start/end offsets on the trace clock.
type taskTiming struct {
	start, end time.Duration
}

// runTasks executes task(0..n-1) on the worker pool with no per-task
// bookkeeping — the untraced hot path. Panics inside tasks propagate to
// the caller. When the Context is bound to a Go context (WithGoContext)
// and that context ends, dispatch stops, in-flight tasks drain, and
// runTasks panics with *Canceled — workers therefore check for
// cancellation between partitions, never mid-partition.
func (c *Context) runTasks(n int, task func(i int)) {
	c.runTimed(n, nil, task)
}

// runTimed is runTasks plus per-task timing on clock (when non-nil): each
// task's start/end offsets are captured on the worker goroutine and
// returned indexed by partition, so callers attach task spans in
// deterministic partition order after the stage completes. clock must be
// safe for concurrent readers (obs.WallClock and obs.FrozenClock are).
func (c *Context) runTimed(n int, clock obs.Clock, task func(i int)) []taskTiming {
	var times []taskTiming
	if clock != nil {
		times = make([]taskTiming, n)
	}
	if n == 0 {
		return times
	}
	if err := c.Err(); err != nil {
		panic(&Canceled{Cause: err})
	}
	workers := c.workers
	if workers > n {
		workers = n
	}
	bound := c.goCtx != nil
	var wg sync.WaitGroup
	next := make(chan int)
	panics := make(chan any, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- p
				}
			}()
			for i := range next {
				if bound && c.Err() != nil {
					continue // drain the queue without computing
				}
				if clock == nil {
					task(i)
					continue
				}
				start := clock()
				task(i)
				times[i] = taskTiming{start: start, end: clock()}
			}
		}()
	}
	if !bound {
		// Unbound contexts keep the plain-send dispatch: this is the hot
		// path for every CLI/bench run and a select would tax every task.
		for i := 0; i < n; i++ {
			next <- i
		}
	} else {
		done := c.goCtx.Done()
	dispatch:
		for i := 0; i < n; i++ {
			select {
			case next <- i:
			case <-done:
				break dispatch
			}
		}
	}
	close(next)
	wg.Wait()
	select {
	case p := <-panics:
		panic(p)
	default:
	}
	if err := c.Err(); err != nil {
		panic(&Canceled{Cause: err})
	}
	return times
}
