// Package rdd is ScrubJay's data-parallel substrate: a from-scratch,
// in-memory reimplementation of the resilient-distributed-dataset execution
// model the paper builds on (§4.1, §5.3). An RDD is a lazily evaluated,
// partitioned collection with lineage: narrow operations (map, filter,
// flatMap) fuse into a single stage per partition, while shuffle operations
// (groupByKey, coGroup, repartition) force a stage boundary that exchanges
// rows between partitions.
//
// Execution happens on a worker pool inside one process. Every task
// (one partition of one stage) is timed, and the recorded task log can be
// replayed onto a simulated cluster (see Cluster and SimulateMakespan) to
// study scaling behaviour on hardware that lacks the paper's 10-node,
// 32-core data cluster. The computed results are always real; only the
// placement of measured task costs onto parallel executors is simulated.
package rdd

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Context owns the worker pool and the task-metric log for a set of RDDs.
type Context struct {
	workers int
	// goCtx, when non-nil, bounds every action run through this Context:
	// once it is done, workers stop picking up new partitions and the
	// in-flight action aborts with a *Canceled panic (see Guard).
	goCtx context.Context

	mu     sync.Mutex
	stages []StageMetrics
	nextID int
}

// NewContext returns a context executing with the given number of parallel
// workers; workers <= 0 selects GOMAXPROCS.
func NewContext(workers int) *Context {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Context{workers: workers}
}

// WithGoContext returns a new execution Context with the same worker count
// bound to ctx: actions on RDDs built from the returned Context stop
// dispatching partitions as soon as ctx is cancelled or its deadline
// expires, and abort with a *Canceled panic once in-flight tasks drain.
// Recover the panic into an error with Guard (pipeline.Execute does this
// for plan execution). The returned Context keeps its own metric log.
func (c *Context) WithGoContext(ctx context.Context) *Context {
	return &Context{workers: c.workers, goCtx: ctx}
}

// Workers reports the configured real parallelism.
func (c *Context) Workers() int { return c.workers }

// Err reports the bound Go context's error: nil while execution may
// proceed, non-nil once the Context is cancelled or past its deadline.
func (c *Context) Err() error {
	if c.goCtx == nil {
		return nil
	}
	return c.goCtx.Err()
}

// Canceled is the error (and internal panic payload) for an action aborted
// because the Context's bound Go context ended. Workers check between
// partitions, so a cancelled Collect/Count returns promptly instead of
// burning cores for a client that is no longer listening.
type Canceled struct {
	// Cause is the Go context error (context.Canceled or
	// context.DeadlineExceeded).
	Cause error
}

func (c *Canceled) Error() string { return fmt.Sprintf("rdd: execution canceled: %v", c.Cause) }

// Unwrap exposes the context error to errors.Is/As.
func (c *Canceled) Unwrap() error { return c.Cause }

// Guard runs fn, converting the cancellation abort of a bound Context into
// an ordinary error. Use it around actions (Collect, Count, ...) on RDDs
// whose Context came from WithGoContext:
//
//	rows, err := rdd.Guard(func() []value.Row { return ds.Collect() })
//
// Non-cancellation panics propagate unchanged.
func Guard[T any](fn func() T) (out T, err error) {
	defer func() {
		if p := recover(); p != nil {
			if c, ok := p.(*Canceled); ok {
				err = c
				return
			}
			panic(p)
		}
	}()
	out = fn()
	return out, nil
}

// TaskMetrics records one executed task (one partition of one stage).
type TaskMetrics struct {
	Partition int
	Duration  time.Duration
	RowsOut   int64
}

// StageMetrics records one executed stage.
type StageMetrics struct {
	ID   int
	Name string
	// Shuffle is true when the stage ended in a partition exchange.
	Shuffle bool
	// ShuffleRows is the number of rows exchanged at the stage boundary.
	ShuffleRows int64
	Tasks       []TaskMetrics
}

// TotalTaskTime sums the durations of all tasks in the stage.
func (s StageMetrics) TotalTaskTime() time.Duration {
	var t time.Duration
	for _, task := range s.Tasks {
		t += task.Duration
	}
	return t
}

// Metrics is a snapshot of the stages executed so far.
type Metrics struct {
	Stages []StageMetrics
}

// TotalTaskTime sums task durations across all stages.
func (m Metrics) TotalTaskTime() time.Duration {
	var t time.Duration
	for _, s := range m.Stages {
		t += s.TotalTaskTime()
	}
	return t
}

// TotalShuffleRows sums shuffled rows across all stages.
func (m Metrics) TotalShuffleRows() int64 {
	var n int64
	for _, s := range m.Stages {
		n += s.ShuffleRows
	}
	return n
}

// ResetMetrics clears the recorded stage log (used between benchmark runs).
func (c *Context) ResetMetrics() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stages = nil
}

// SnapshotMetrics copies the recorded stage log.
func (c *Context) SnapshotMetrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]StageMetrics, len(c.stages))
	copy(out, c.stages)
	return Metrics{Stages: out}
}

func (c *Context) recordStage(s StageMetrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s.ID = c.nextID
	c.nextID++
	c.stages = append(c.stages, s)
}

// runTasks executes task(0..n-1) on the worker pool and returns the
// duration of each task. Panics inside tasks propagate to the caller. When
// the Context is bound to a Go context (WithGoContext) and that context
// ends, dispatch stops, in-flight tasks drain, and runTasks panics with
// *Canceled — workers therefore check for cancellation between partitions,
// never mid-partition.
func (c *Context) runTasks(n int, task func(i int)) []TaskMetrics {
	metrics := make([]TaskMetrics, n)
	if n == 0 {
		return metrics
	}
	if err := c.Err(); err != nil {
		panic(&Canceled{Cause: err})
	}
	workers := c.workers
	if workers > n {
		workers = n
	}
	bound := c.goCtx != nil
	var wg sync.WaitGroup
	next := make(chan int)
	panics := make(chan any, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- p
				}
			}()
			for i := range next {
				if bound && c.Err() != nil {
					continue // drain the queue without computing
				}
				start := time.Now()
				task(i)
				metrics[i] = TaskMetrics{Partition: i, Duration: time.Since(start)}
			}
		}()
	}
	if !bound {
		// Unbound contexts keep the plain-send dispatch: this is the hot
		// path for every CLI/bench run and a select would tax every task.
		for i := 0; i < n; i++ {
			next <- i
		}
	} else {
		done := c.goCtx.Done()
	dispatch:
		for i := 0; i < n; i++ {
			select {
			case next <- i:
			case <-done:
				break dispatch
			}
		}
	}
	close(next)
	wg.Wait()
	select {
	case p := <-panics:
		panic(p)
	default:
	}
	if err := c.Err(); err != nil {
		panic(&Canceled{Cause: err})
	}
	return metrics
}
