package rdd

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"scrubjay/internal/obs"
)

// Placement is the seam between the rdd execution model and a physical
// cluster. When a Context carries a Placement (WithPlacement), every shuffle
// boundary whose RDD has a Wire routes its exchange through it: the driver
// encodes each (src, dst) bucket, the Placement moves the bytes through
// shard workers, and the driver decodes one merged payload per destination.
//
// The contract that keeps distributed runs bit-for-bit identical to
// in-process ones: the returned payload for destination d must be the
// concatenation of the enc[src][d] payloads in ascending src order (and,
// within one src, in chunk-sequence order). internal/cluster's Scheduler is
// the live TCP implementation; tests use in-memory fakes; a nil Placement
// (the default) is the deterministic in-process path simsched simulates
// placement for.
type Placement interface {
	// Exchange moves one shuffle's encoded buckets. enc[src][dst] is the
	// encoded payload source partition src contributes to destination dst
	// (nil or empty when nothing moves). It returns one merged payload per
	// destination, in the (src, seq) order documented above. stage names
	// the shuffle for diagnostics and worker-side storage keys.
	Exchange(ctx context.Context, stage string, numOut int, enc [][][]byte) ([][]byte, error)
}

// Wire describes how one element type crosses the exchange: Append encodes
// an element (self-delimiting), Decode consumes one element from the front
// of a payload and reports the bytes consumed. A merged destination payload
// is decoded by looping Decode until the payload is exhausted.
type Wire[T any] struct {
	Append func(buf []byte, v T) []byte
	Decode func(b []byte) (T, int, error)
}

// WithWire attaches a wire codec to r, making its downstream shuffle
// boundary eligible for distributed exchange. Mutates r in place (an RDD
// holds a mutex and is never copied) and returns it for chaining. RDDs
// without a wire always shuffle in-process, whatever the Placement.
func WithWire[T any](r *RDD[T], w *Wire[T]) *RDD[T] {
	r.wire = w
	return r
}

// WithPlacement returns a derived execution Context that routes eligible
// shuffle exchanges through p. The worker count, bound Go context, and
// trace scope carry over; pass nil to detach.
func (c *Context) WithPlacement(p Placement) *Context {
	nc := &Context{workers: c.workers, goCtx: c.goCtx, placement: p}
	nc.scope.Store(c.scope.Load())
	return nc
}

// Placement returns the Context's placement (nil = in-process shuffles).
func (c *Context) Placement() Placement { return c.placement }

// ExecFailure is the error (and internal panic payload) for a distributed
// exchange that failed after the scheduler exhausted its retries — a worker
// died mid-shuffle with no live replacement, or the data plane returned
// corrupt bytes. Distinct from Canceled: the query did not time out, the
// cluster failed it.
type ExecFailure struct {
	Stage string
	Cause error
}

func (e *ExecFailure) Error() string {
	return fmt.Sprintf("rdd: distributed exchange %q failed: %v", e.Stage, e.Cause)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *ExecFailure) Unwrap() error { return e.Cause }

// exchangeVia routes bucketed shuffle output through the Context's
// Placement. buckets is [src][dst][]T as produced by the map-side tasks.
// Returns (nil, false) when the exchange is not eligible (no placement or
// no wire) — callers then run the in-process concatenation. On transport
// failure it panics with *ExecFailure (or *Canceled when the bound Go
// context ended), mirroring how cancellation propagates out of actions.
func exchangeVia[T any](c *Context, w *Wire[T], stage string, numOut int, buckets [][][]T) ([][]T, bool) {
	if c.placement == nil || w == nil {
		return nil, false
	}
	// Encode per source partition, in parallel under the task pool.
	enc := make([][][]byte, len(buckets))
	var encBytes int64
	c.runTasks(len(buckets), func(i int) {
		local := make([][]byte, numOut)
		var n int64
		for d, bucket := range buckets[i] {
			if len(bucket) == 0 {
				continue
			}
			var buf []byte
			for _, v := range bucket {
				buf = w.Append(buf, v)
			}
			local[d] = buf
			n += int64(len(buf))
		}
		enc[i] = local
		atomic.AddInt64(&encBytes, n)
	})

	goCtx := c.goCtx
	if goCtx == nil {
		goCtx = context.Background()
	}
	// The exchange span opens before the placement call so the scheduler can
	// read it from the context: its (trace id, span id) ride the wire as the
	// put/fetch trace context, and worker-recorded subtrees graft back under
	// it — the cross-process parent of everything this shuffle did remotely.
	exSpan := c.Span().Child(obs.KindStage, stage+"|shuffle-fetch")
	exSpan.SetBool(obs.AttrShuffle, true)
	exSpan.SetInt(obs.AttrPartitions, int64(numOut))
	goCtx = obs.ContextWithSpan(goCtx, exSpan)
	merged, err := c.placement.Exchange(goCtx, stage, numOut, enc)
	if err != nil {
		exSpan.End()
		if c.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			cause := c.Err()
			if cause == nil {
				cause = err
			}
			panic(&Canceled{Cause: cause})
		}
		panic(&ExecFailure{Stage: stage, Cause: err})
	}
	if len(merged) != numOut {
		exSpan.End()
		panic(&ExecFailure{Stage: stage, Cause: fmt.Errorf("placement returned %d partitions, want %d", len(merged), numOut)})
	}
	exSpan.SetInt(obs.AttrShuffleBytes, encBytes)
	exSpan.End()

	// Decode per destination partition, in parallel. A decode error is a
	// data-plane failure (corrupt payload), not a user-code panic.
	dst := make([][]T, numOut)
	decodeErrs := make([]error, numOut)
	c.runTasks(numOut, func(d int) {
		payload := merged[d]
		var part []T
		for len(payload) > 0 {
			v, n, err := w.Decode(payload)
			if err != nil {
				decodeErrs[d] = err
				return
			}
			if n <= 0 {
				decodeErrs[d] = fmt.Errorf("wire decode consumed %d bytes", n)
				return
			}
			part = append(part, v)
			payload = payload[n:]
		}
		dst[d] = part
	})
	for d, err := range decodeErrs {
		if err != nil {
			panic(&ExecFailure{Stage: stage, Cause: fmt.Errorf("decoding destination %d: %w", d, err)})
		}
	}

	return dst, true
}
