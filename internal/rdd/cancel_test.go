package rdd

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestCollectCancelPrompt proves the satellite requirement: a cancelled
// Collect returns promptly instead of computing every remaining partition.
func TestCollectCancelPrompt(t *testing.T) {
	goCtx, cancel := context.WithCancel(context.Background())
	ctx := NewContext(2).WithGoContext(goCtx)

	const parts = 64
	perPartition := 20 * time.Millisecond
	r := Generate(ctx, parts, parts, func(i int) int {
		time.Sleep(perPartition)
		return i
	})

	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	out, err := Guard(func() []int { return r.Collect() })
	elapsed := time.Since(start)

	if err == nil {
		t.Fatalf("cancelled Collect returned %d rows and no error", len(out))
	}
	var c *Canceled
	if !errors.As(err, &c) {
		t.Fatalf("error = %v, want *Canceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false, err = %v", err)
	}
	// Serial completion would take parts/workers * perPartition = 640ms.
	// Prompt return means at most the in-flight partitions finish.
	if limit := 300 * time.Millisecond; elapsed > limit {
		t.Errorf("cancelled Collect took %v, want < %v", elapsed, limit)
	}
}

// TestDeadlineExceededCount checks deadline expiry (not just explicit
// cancellation) aborts an action with the context error attached.
func TestDeadlineExceededCount(t *testing.T) {
	goCtx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	ctx := NewContext(1).WithGoContext(goCtx)
	r := Generate(ctx, 32, 32, func(i int) int {
		time.Sleep(10 * time.Millisecond)
		return i
	})
	_, err := Guard(func() int64 { return r.Count() })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestGuardPassesThrough ensures Guard is transparent for uncancelled runs
// and pre-cancelled contexts abort before any compute happens.
func TestGuardPassesThrough(t *testing.T) {
	ctx := NewContext(2)
	r := Parallelize(ctx, []int{1, 2, 3, 4}, 2)
	out, err := Guard(func() []int { return r.Collect() })
	if err != nil || len(out) != 4 {
		t.Fatalf("Guard(Collect) = %v rows, err %v", len(out), err)
	}

	goCtx, cancel := context.WithCancel(context.Background())
	cancel()
	bound := NewContext(2).WithGoContext(goCtx)
	// Each partition would sleep 2s; a pre-cancelled context must abort
	// before computing any of them.
	start := time.Now()
	_, err = Guard(func() int64 {
		return Generate(bound, 8, 4, func(i int) int {
			time.Sleep(2 * time.Second)
			return i
		}).Count()
	})
	if err == nil {
		t.Fatal("pre-cancelled context: want error")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("pre-cancelled action took %v, want immediate abort", elapsed)
	}
}
