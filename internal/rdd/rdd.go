package rdd

import (
	"fmt"
	"sort"
	"sync"

	"scrubjay/internal/obs"
)

// RDD is a lazily evaluated, partitioned, immutable collection of T.
// Operations build lineage; actions (Collect, Count, Reduce) trigger
// execution. Narrow operations fuse: a chain of maps/filters over one RDD
// executes as a single task per partition, as in Spark.
type RDD[T any] struct {
	ctx      *Context
	name     string
	numParts int
	// compute produces one partition. It must be safe to call concurrently
	// for distinct partitions and pure with respect to its input lineage:
	// no writes to captured variables or package-level state. This contract
	// is enforced statically — cmd/sjvet's purity analyzer flags compute
	// bodies (and closures passed to Map/Filter/FlatMap and friends) that
	// write state outliving one invocation.
	compute func(part int) []T

	// wire, when set (WithWire), makes the next shuffle boundary over this
	// RDD eligible for distributed exchange through the Context's Placement.
	wire *Wire[T]

	// Caching: once materialized, partitions are served from memory.
	cacheMu sync.Mutex
	caching bool
	cached  [][]T
}

// Parallelize distributes a slice across numParts partitions.
func Parallelize[T any](ctx *Context, data []T, numParts int) *RDD[T] {
	if numParts <= 0 {
		numParts = ctx.Workers()
	}
	if numParts < 1 {
		numParts = 1
	}
	return &RDD[T]{
		ctx:      ctx,
		name:     "parallelize",
		numParts: numParts,
		compute: func(part int) []T {
			lo := part * len(data) / numParts
			hi := (part + 1) * len(data) / numParts
			out := make([]T, hi-lo)
			copy(out, data[lo:hi])
			return out
		},
	}
}

// FromPartitions wraps pre-partitioned data.
func FromPartitions[T any](ctx *Context, parts [][]T) *RDD[T] {
	return &RDD[T]{
		ctx:      ctx,
		name:     "fromPartitions",
		numParts: len(parts),
		compute:  func(part int) []T { return parts[part] },
	}
}

// Generate builds an RDD of n elements produced by gen(i), partitioned into
// numParts. Useful for synthetic workloads without materializing input
// slices up front.
func Generate[T any](ctx *Context, n int, numParts int, gen func(i int) T) *RDD[T] {
	if numParts <= 0 {
		numParts = ctx.Workers()
	}
	if numParts < 1 {
		numParts = 1
	}
	return &RDD[T]{
		ctx:      ctx,
		name:     "generate",
		numParts: numParts,
		compute: func(part int) []T {
			lo := part * n / numParts
			hi := (part + 1) * n / numParts
			out := make([]T, 0, hi-lo)
			for i := lo; i < hi; i++ {
				out = append(out, gen(i))
			}
			return out
		},
	}
}

// Context returns the execution context.
func (r *RDD[T]) Context() *Context { return r.ctx }

// NumPartitions reports the partition count.
func (r *RDD[T]) NumPartitions() int { return r.numParts }

// Name returns the lineage label of this RDD.
func (r *RDD[T]) Name() string { return r.name }

// WithName relabels the RDD for metrics and debugging.
func (r *RDD[T]) WithName(name string) *RDD[T] {
	r.name = name
	return r
}

// Cache marks the RDD so its first materialization is retained and reused
// by later actions.
func (r *RDD[T]) Cache() *RDD[T] {
	r.cacheMu.Lock()
	r.caching = true
	r.cacheMu.Unlock()
	return r
}

// partition computes (or fetches from cache) one partition.
func (r *RDD[T]) partition(part int) []T {
	r.cacheMu.Lock()
	if r.cached != nil {
		p := r.cached[part]
		r.cacheMu.Unlock()
		return p
	}
	r.cacheMu.Unlock()
	return r.compute(part)
}

// materialize runs a stage that computes every partition of r on the worker
// pool and returns the partitions. Under a trace scope it emits a stage
// span with one timed task span per partition; untraced it records nothing
// and pays no timing cost (the nil-span fast path).
func (r *RDD[T]) materialize(stageName string, shuffle bool, shuffleRows int64) [][]T {
	r.cacheMu.Lock()
	if r.cached != nil {
		parts := r.cached
		r.cacheMu.Unlock()
		return parts
	}
	r.cacheMu.Unlock()

	parts := make([][]T, r.numParts)
	compute := func(i int) { parts[i] = r.partition(i) }
	if sp := r.ctx.Span(); sp != nil {
		stage := sp.Child(obs.KindStage, stageName)
		stage.SetInt(obs.AttrPartitions, int64(r.numParts))
		if shuffle {
			stage.SetBool(obs.AttrShuffle, true)
			stage.SetInt(obs.AttrShuffleRows, shuffleRows)
		}
		times := r.ctx.runTimed(r.numParts, stage.Clock(), compute)
		// Task spans attach post-run in partition order so the trace is
		// deterministic regardless of worker scheduling.
		var rows int64
		for i, tm := range times {
			task := stage.ChildAt(obs.KindTask, "", tm.start)
			task.SetInt(obs.AttrPartition, int64(i))
			task.SetInt(obs.AttrRowsOut, int64(len(parts[i])))
			task.EndAt(tm.end)
			rows += int64(len(parts[i]))
		}
		stage.SetInt(obs.AttrRowsOut, rows)
		stage.End()
	} else {
		r.ctx.runTasks(r.numParts, compute)
	}

	r.cacheMu.Lock()
	if r.caching && r.cached == nil {
		r.cached = parts
	}
	r.cacheMu.Unlock()
	return parts
}

// ---- Narrow transformations (fuse into the consumer's stage) ----

// Map applies f elementwise.
func Map[A, B any](r *RDD[A], f func(A) B) *RDD[B] {
	return &RDD[B]{
		ctx:      r.ctx,
		name:     r.name + "|map",
		numParts: r.numParts,
		compute: func(part int) []B {
			in := r.partition(part)
			out := make([]B, len(in))
			for i, v := range in {
				out[i] = f(v)
			}
			return out
		},
	}
}

// FlatMap applies f elementwise and concatenates the results.
func FlatMap[A, B any](r *RDD[A], f func(A) []B) *RDD[B] {
	return &RDD[B]{
		ctx:      r.ctx,
		name:     r.name + "|flatMap",
		numParts: r.numParts,
		compute: func(part int) []B {
			in := r.partition(part)
			var out []B
			for _, v := range in {
				out = append(out, f(v)...)
			}
			return out
		},
	}
}

// Filter keeps elements satisfying pred.
func Filter[T any](r *RDD[T], pred func(T) bool) *RDD[T] {
	return &RDD[T]{
		ctx:      r.ctx,
		name:     r.name + "|filter",
		numParts: r.numParts,
		compute: func(part int) []T {
			in := r.partition(part)
			out := make([]T, 0, len(in))
			for _, v := range in {
				if pred(v) {
					out = append(out, v)
				}
			}
			return out
		},
	}
}

// MapPartitions transforms whole partitions at once.
func MapPartitions[A, B any](r *RDD[A], f func(part int, in []A) []B) *RDD[B] {
	return &RDD[B]{
		ctx:      r.ctx,
		name:     r.name + "|mapPartitions",
		numParts: r.numParts,
		compute:  func(part int) []B { return f(part, r.partition(part)) },
	}
}

// Union concatenates two RDDs (narrow; partitions are appended).
func Union[T any](a, b *RDD[T]) *RDD[T] {
	if a.ctx != b.ctx {
		panic("rdd.Union: RDDs from different contexts")
	}
	return &RDD[T]{
		ctx:      a.ctx,
		name:     fmt.Sprintf("union(%s,%s)", a.name, b.name),
		numParts: a.numParts + b.numParts,
		compute: func(part int) []T {
			if part < a.numParts {
				return a.partition(part)
			}
			return b.partition(part - a.numParts)
		},
	}
}

// ---- Actions ----

// Collect materializes the RDD into a single slice.
func (r *RDD[T]) Collect() []T {
	parts := r.materialize(r.name+"|collect", false, 0)
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make([]T, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Count returns the number of elements.
func (r *RDD[T]) Count() int64 {
	parts := r.materialize(r.name+"|count", false, 0)
	var n int64
	for _, p := range parts {
		n += int64(len(p))
	}
	return n
}

// Take returns up to n elements (materializes the whole RDD; this substrate
// has no partial evaluation).
func (r *RDD[T]) Take(n int) []T {
	all := r.Collect()
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// Reduce folds all elements with an associative, commutative f. The second
// result is false for an empty RDD.
func Reduce[T any](r *RDD[T], f func(T, T) T) (T, bool) {
	parts := r.materialize(r.name+"|reduce", false, 0)
	var acc T
	have := false
	for _, p := range parts {
		for _, v := range p {
			if !have {
				acc, have = v, true
			} else {
				acc = f(acc, v)
			}
		}
	}
	return acc, have
}

// Aggregate folds each partition with seqOp from zero, then merges the
// per-partition results with combOp.
func Aggregate[T, U any](r *RDD[T], zero func() U, seqOp func(U, T) U, combOp func(U, U) U) U {
	parts := r.materialize(r.name+"|aggregate", false, 0)
	partial := make([]U, len(parts))
	r.ctx.runTasks(len(parts), func(i int) {
		acc := zero()
		for _, v := range parts[i] {
			acc = seqOp(acc, v)
		}
		partial[i] = acc
	})
	acc := zero()
	for _, p := range partial {
		acc = combOp(acc, p)
	}
	return acc
}

// SortBy returns a new RDD with all elements totally ordered by less. The
// implementation exchanges all rows (a full shuffle) and range-partitions
// the sorted output back to the original partition count.
func SortBy[T any](r *RDD[T], less func(a, b T) bool) *RDD[T] {
	parts := r.materialize(r.name+"|sort-input", false, 0)
	var n int64
	for _, p := range parts {
		n += int64(len(p))
	}
	all := make([]T, 0, n)
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.SliceStable(all, func(i, j int) bool { return less(all[i], all[j]) })
	out := Parallelize(r.ctx, all, r.numParts)
	out.name = r.name + "|sortBy"
	r.ctx.recordShuffle(out.name, n)
	return out
}
