package rdd

import (
	"fmt"
	"sort"
	"strconv"
	"testing"
)

func intsUpTo(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	return xs
}

func TestParallelizeCollectPreservesAll(t *testing.T) {
	ctx := NewContext(4)
	for _, parts := range []int{1, 3, 7, 16} {
		r := Parallelize(ctx, intsUpTo(100), parts)
		if r.NumPartitions() != parts {
			t.Fatalf("NumPartitions = %d", r.NumPartitions())
		}
		got := r.Collect()
		if len(got) != 100 {
			t.Fatalf("parts=%d: collected %d", parts, len(got))
		}
		sort.Ints(got)
		for i, v := range got {
			if v != i {
				t.Fatalf("parts=%d: got[%d]=%d", parts, i, v)
			}
		}
	}
}

func TestParallelizeDefaultsAndEmpty(t *testing.T) {
	ctx := NewContext(3)
	r := Parallelize(ctx, []int{}, 0)
	if r.NumPartitions() != 3 {
		t.Errorf("default partitions = %d, want workers", r.NumPartitions())
	}
	if n := r.Count(); n != 0 {
		t.Errorf("empty count = %d", n)
	}
	if got := r.Collect(); len(got) != 0 {
		t.Errorf("empty collect = %v", got)
	}
}

func TestGenerate(t *testing.T) {
	ctx := NewContext(2)
	r := Generate(ctx, 10, 4, func(i int) int { return i * i })
	got := r.Collect()
	sort.Ints(got)
	for i := 0; i < 10; i++ {
		if got[i] != i*i {
			t.Fatalf("got[%d] = %d", i, got[i])
		}
	}
}

func TestMapFilterFlatMapFuse(t *testing.T) {
	ctx := NewContext(4)
	r := Parallelize(ctx, intsUpTo(20), 4)
	doubled := Map(r, func(x int) int { return 2 * x })
	evensOnly := Filter(doubled, func(x int) bool { return x%4 == 0 })
	expanded := FlatMap(evensOnly, func(x int) []int { return []int{x, x + 1} })
	ctx.ResetMetrics()
	got := expanded.Collect()
	if len(got) != 20 {
		t.Fatalf("len = %d, want 20", len(got))
	}
	// Narrow chain should execute as a single stage.
	m := ctx.SnapshotMetrics()
	if len(m.Stages) != 1 {
		t.Errorf("narrow chain ran %d stages, want 1", len(m.Stages))
	}
}

func TestMapPartitions(t *testing.T) {
	ctx := NewContext(2)
	r := Parallelize(ctx, intsUpTo(10), 5)
	sums := MapPartitions(r, func(_ int, in []int) []int {
		s := 0
		for _, v := range in {
			s += v
		}
		return []int{s}
	})
	got := sums.Collect()
	if len(got) != 5 {
		t.Fatalf("len = %d", len(got))
	}
	total := 0
	for _, v := range got {
		total += v
	}
	if total != 45 {
		t.Errorf("total = %d", total)
	}
}

func TestUnion(t *testing.T) {
	ctx := NewContext(2)
	a := Parallelize(ctx, []int{1, 2}, 2)
	b := Parallelize(ctx, []int{3, 4, 5}, 1)
	u := Union(a, b)
	if u.NumPartitions() != 3 {
		t.Errorf("union partitions = %d", u.NumPartitions())
	}
	got := u.Collect()
	sort.Ints(got)
	want := []int{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("union = %v", got)
		}
	}
}

func TestUnionDifferentContextsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	a := Parallelize(NewContext(1), []int{1}, 1)
	b := Parallelize(NewContext(1), []int{2}, 1)
	Union(a, b)
}

func TestReduceAndAggregate(t *testing.T) {
	ctx := NewContext(4)
	r := Parallelize(ctx, intsUpTo(101), 7)
	sum, ok := Reduce(r, func(a, b int) int { return a + b })
	if !ok || sum != 5050 {
		t.Errorf("Reduce = %d, %v", sum, ok)
	}
	_, ok = Reduce(Parallelize(ctx, []int{}, 2), func(a, b int) int { return a + b })
	if ok {
		t.Error("empty Reduce should report !ok")
	}
	count := Aggregate(r,
		func() int { return 0 },
		func(acc, _ int) int { return acc + 1 },
		func(a, b int) int { return a + b })
	if count != 101 {
		t.Errorf("Aggregate count = %d", count)
	}
}

func TestTake(t *testing.T) {
	ctx := NewContext(2)
	r := Parallelize(ctx, intsUpTo(10), 3)
	if got := r.Take(3); len(got) != 3 {
		t.Errorf("Take(3) = %v", got)
	}
	if got := r.Take(99); len(got) != 10 {
		t.Errorf("Take(99) = %v", got)
	}
}

func TestCacheComputesOnce(t *testing.T) {
	ctx := NewContext(2)
	calls := 0
	r := &RDD[int]{
		ctx:      ctx,
		name:     "counted",
		numParts: 1,
		compute: func(part int) []int {
			calls++ //sjvet:ignore purity -- numParts is 1, so exactly one partition (and one goroutine) runs this closure
			return []int{1, 2, 3}
		},
	}
	r.Cache()
	r.Collect()
	r.Collect()
	r.Count()
	if calls != 1 {
		t.Errorf("cached compute ran %d times, want 1", calls)
	}
}

func TestSortBy(t *testing.T) {
	ctx := NewContext(4)
	data := []int{5, 3, 9, 1, 7, 2, 8, 0, 6, 4}
	r := Parallelize(ctx, data, 3)
	sorted := SortBy(r, func(a, b int) bool { return a < b }).Collect()
	for i := range sorted {
		if sorted[i] != i {
			t.Fatalf("sorted = %v", sorted)
		}
	}
}

func TestGroupByKey(t *testing.T) {
	ctx := NewContext(4)
	r := Parallelize(ctx, intsUpTo(100), 8)
	groups := GroupByKey(r, func(x int) string { return strconv.Itoa(x % 7) }).Collect()
	if len(groups) != 7 {
		t.Fatalf("groups = %d, want 7", len(groups))
	}
	total := 0
	for _, g := range groups {
		mod, _ := strconv.Atoi(g.Key)
		for _, v := range g.Items {
			if v%7 != mod {
				t.Errorf("item %d in group %s", v, g.Key)
			}
		}
		total += len(g.Items)
	}
	if total != 100 {
		t.Errorf("total grouped items = %d", total)
	}
}

func TestReduceByKey(t *testing.T) {
	ctx := NewContext(4)
	r := Parallelize(ctx, intsUpTo(100), 8)
	sums := ReduceByKey(r, func(x int) string { return strconv.Itoa(x % 5) },
		func(a, b int) int { return a + b }).Collect()
	if len(sums) != 5 {
		t.Fatalf("keys = %d", len(sums))
	}
	grand := 0
	for _, g := range sums {
		if len(g.Items) != 1 {
			t.Fatalf("reduced group has %d items", len(g.Items))
		}
		grand += g.Items[0]
	}
	if grand != 4950 {
		t.Errorf("grand total = %d", grand)
	}
}

func TestCoGroupAndJoin(t *testing.T) {
	ctx := NewContext(4)
	left := Parallelize(ctx, []string{"a1", "a2", "b1", "c1"}, 2)
	right := Parallelize(ctx, []string{"aX", "bX", "bY", "dX"}, 2)
	kl := func(s string) string { return s[:1] }
	kr := func(s string) string { return s[:1] }

	cg := CoGroup(left, right, kl, kr).Collect()
	byKey := map[string]CoGrouped[string, string]{}
	for _, g := range cg {
		byKey[g.Key] = g
	}
	if len(byKey) != 4 {
		t.Fatalf("cogroup keys = %d, want 4 (a,b,c,d)", len(byKey))
	}
	if len(byKey["a"].Left) != 2 || len(byKey["a"].Right) != 1 {
		t.Errorf("a group = %+v", byKey["a"])
	}
	if len(byKey["d"].Left) != 0 || len(byKey["d"].Right) != 1 {
		t.Errorf("d group = %+v", byKey["d"])
	}

	joined := JoinHash(left, right, kl, kr).Collect()
	// a: 2x1=2 pairs, b: 1x2=2 pairs, c and d unmatched.
	if len(joined) != 4 {
		t.Fatalf("join size = %d, want 4: %v", len(joined), joined)
	}
	for _, p := range joined {
		if p.Left[:1] != p.Right[:1] {
			t.Errorf("mismatched pair %v", p)
		}
	}
}

func TestBroadcastJoinMatchesHashJoin(t *testing.T) {
	ctx := NewContext(4)
	leftData := make([]string, 0, 60)
	for i := 0; i < 60; i++ {
		leftData = append(leftData, fmt.Sprintf("%c%d", 'a'+i%5, i))
	}
	rightData := []string{"aR", "cR", "eR", "eS"}
	left := Parallelize(ctx, leftData, 4)
	k := func(s string) string { return s[:1] }

	hj := JoinHash(left, Parallelize(ctx, rightData, 2), k, k).Collect()
	bj := BroadcastJoin(left, rightData, k, k).Collect()
	canon := func(ps []Pair[string, string]) []string {
		out := make([]string, len(ps))
		for i, p := range ps {
			out[i] = p.Left + "|" + p.Right
		}
		sort.Strings(out)
		return out
	}
	h, b := canon(hj), canon(bj)
	if len(h) != len(b) {
		t.Fatalf("hash=%d broadcast=%d", len(h), len(b))
	}
	for i := range h {
		if h[i] != b[i] {
			t.Fatalf("mismatch at %d: %q vs %q", i, h[i], b[i])
		}
	}
}

func TestRepartition(t *testing.T) {
	ctx := NewContext(2)
	r := Parallelize(ctx, intsUpTo(50), 2)
	rp := Repartition(r, 8)
	if rp.NumPartitions() != 8 {
		t.Errorf("partitions = %d", rp.NumPartitions())
	}
	got := rp.Collect()
	sort.Ints(got)
	for i := range got {
		if got[i] != i {
			t.Fatalf("repartition lost data: %v", got)
		}
	}
	if rp2 := Repartition(r, 0); rp2.NumPartitions() != 1 {
		t.Errorf("min partitions = %d", rp2.NumPartitions())
	}
}

func TestShuffleMetricsRecorded(t *testing.T) {
	ctx := NewContext(2)
	ctx.ResetMetrics()
	r := Parallelize(ctx, intsUpTo(100), 4)
	GroupByKey(r, func(x int) string { return strconv.Itoa(x % 3) }).Collect()
	m := ctx.SnapshotMetrics()
	if m.TotalShuffleRows() != 100 {
		t.Errorf("shuffle rows = %d, want 100", m.TotalShuffleRows())
	}
	var sawShuffle bool
	for _, s := range m.Stages {
		if s.Shuffle {
			sawShuffle = true
		}
	}
	if !sawShuffle {
		t.Error("no shuffle stage recorded")
	}
	if m.TotalTaskTime() < 0 {
		t.Error("negative task time")
	}
}

func TestWorkerPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic to propagate")
		}
	}()
	ctx := NewContext(2)
	r := Map(Parallelize(ctx, intsUpTo(10), 4), func(x int) int {
		if x == 7 {
			panic("boom")
		}
		return x
	})
	r.Collect()
}

func TestContextDefaults(t *testing.T) {
	if NewContext(0).Workers() < 1 {
		t.Error("default workers < 1")
	}
	if NewContext(-5).Workers() < 1 {
		t.Error("negative workers")
	}
}

func TestNameAndWithName(t *testing.T) {
	ctx := NewContext(1)
	r := Parallelize(ctx, []int{1}, 1).WithName("custom")
	if r.Name() != "custom" {
		t.Errorf("Name = %q", r.Name())
	}
	if r.Context() != ctx {
		t.Error("Context identity")
	}
}

func TestDistinct(t *testing.T) {
	ctx := NewContext(3)
	r := Parallelize(ctx, []int{3, 1, 3, 2, 1, 3}, 3)
	got := Distinct(r, func(x int) string { return strconv.Itoa(x) }).Collect()
	sort.Ints(got)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Distinct = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Distinct = %v", got)
		}
	}
}

func TestCountByKey(t *testing.T) {
	ctx := NewContext(3)
	r := Parallelize(ctx, intsUpTo(100), 7)
	counts := CountByKey(r, func(x int) string { return strconv.Itoa(x % 3) })
	if counts["0"] != 34 || counts["1"] != 33 || counts["2"] != 33 {
		t.Errorf("CountByKey = %v", counts)
	}
	var total int64
	for _, n := range counts {
		total += n
	}
	if total != 100 {
		t.Errorf("total = %d", total)
	}
}
