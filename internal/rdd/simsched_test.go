package rdd

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleLPT(t *testing.T) {
	d := func(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }
	// One executor: makespan is the sum.
	if got := scheduleLPT([]time.Duration{d(3), d(1), d(2)}, 1); got != d(6) {
		t.Errorf("1 exec: %v", got)
	}
	// Enough executors: makespan is the max.
	if got := scheduleLPT([]time.Duration{d(3), d(1), d(2)}, 3); got != d(3) {
		t.Errorf("3 exec: %v", got)
	}
	// LPT packs 4,3,3 onto 2 executors as {4,3},{3} -> wait: {4},{3,3} = 6.
	if got := scheduleLPT([]time.Duration{d(4), d(3), d(3)}, 2); got != d(6) {
		t.Errorf("2 exec: %v", got)
	}
	if got := scheduleLPT(nil, 4); got != 0 {
		t.Errorf("empty: %v", got)
	}
	if got := scheduleLPT([]time.Duration{d(5)}, 0); got != d(5) {
		t.Errorf("min one executor: %v", got)
	}
}

func TestQuickLPTBounds(t *testing.T) {
	prop := func(raw []uint16, m uint8) bool {
		if len(raw) == 0 {
			return true
		}
		exec := int(m%16) + 1
		ds := make([]time.Duration, len(raw))
		var sum, max time.Duration
		for i, r := range raw {
			ds[i] = time.Duration(r) * time.Microsecond
			sum += ds[i]
			if ds[i] > max {
				max = ds[i]
			}
		}
		got := scheduleLPT(ds, exec)
		// Makespan is at least max task and perfect-split lower bound, and
		// at most the serial sum.
		lower := sum / time.Duration(exec)
		if max > lower {
			lower = max
		}
		return got >= lower && got <= sum
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSimulateMakespanMonotoneInNodes(t *testing.T) {
	// Build a synthetic metrics log: one compute stage with 320 tasks, one
	// shuffle stage.
	tasks := make([]TaskMetrics, 320)
	for i := range tasks {
		tasks[i] = TaskMetrics{Partition: i, Duration: 10 * time.Millisecond}
	}
	m := Metrics{Stages: []StageMetrics{
		{Name: "compute", Tasks: tasks},
		{Name: "exchange", Shuffle: true, ShuffleRows: 1_000_000, Tasks: tasks},
	}}
	prev := time.Duration(1<<62 - 1)
	for nodes := 1; nodes <= 10; nodes++ {
		got := SimulateMakespan(m, PaperCluster(nodes))
		if got <= 0 {
			t.Fatalf("nodes=%d: non-positive makespan", nodes)
		}
		if got > prev {
			t.Errorf("makespan increased from %v to %v at %d nodes", prev, got, nodes)
		}
		prev = got
	}
	// Diminishing returns: speedup 1->2 nodes exceeds 9->10 nodes.
	t1 := SimulateMakespan(m, PaperCluster(1))
	t2 := SimulateMakespan(m, PaperCluster(2))
	t9 := SimulateMakespan(m, PaperCluster(9))
	t10 := SimulateMakespan(m, PaperCluster(10))
	if (t1 - t2) < (t9 - t10) {
		t.Errorf("expected diminishing returns: 1->2 gain %v, 9->10 gain %v", t1-t2, t9-t10)
	}
}

func TestSimulateMakespanLinearInRows(t *testing.T) {
	mk := func(n int) Metrics {
		tasks := make([]TaskMetrics, 32)
		for i := range tasks {
			tasks[i] = TaskMetrics{Duration: time.Duration(n) * time.Microsecond}
		}
		return Metrics{Stages: []StageMetrics{
			{Name: "c", Tasks: tasks},
			{Name: "x", Shuffle: true, ShuffleRows: int64(n) * 1000, Tasks: tasks},
		}}
	}
	cl := PaperCluster(10)
	t1 := SimulateMakespan(mk(100), cl)
	t2 := SimulateMakespan(mk(200), cl)
	t4 := SimulateMakespan(mk(400), cl)
	// Subtract fixed latency before checking proportionality.
	fixed := 2 * cl.ShuffleLatency / 2 // one shuffle stage
	g1 := t2 - t1
	g2 := t4 - t2
	if g2 < g1 {
		t.Errorf("expected non-decreasing growth, got %v then %v (fixed %v)", g1, g2, fixed)
	}
}

func TestClusterExecutors(t *testing.T) {
	if PaperCluster(10).Executors() != 320 {
		t.Errorf("executors = %d", PaperCluster(10).Executors())
	}
	if (Cluster{}).Executors() != 1 {
		t.Error("zero cluster should have 1 executor")
	}
}

func TestSimulatedEndToEnd(t *testing.T) {
	// Run a real shuffle job and replay it on 1 vs 10 nodes.
	ctx := NewContext(2)
	ctx.ResetMetrics()
	r := Generate(ctx, 20000, 64, func(i int) int { return i })
	GroupByKey(r, func(x int) string {
		return string(rune('a' + x%26))
	}).Collect()
	m := ctx.SnapshotMetrics()
	t1 := SimulateMakespan(m, PaperCluster(1))
	t10 := SimulateMakespan(m, PaperCluster(10))
	if t10 >= t1 {
		t.Errorf("10-node simulated makespan %v should beat 1-node %v", t10, t1)
	}
}
