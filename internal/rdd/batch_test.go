package rdd

import (
	"reflect"
	"testing"
)

func TestExchangePartitionsOrderAndMetrics(t *testing.T) {
	ctx := NewContext(2)
	r := FromPartitions(ctx, [][]int{{1, 2, 3}, {4, 5}, {6}})
	// Route each element to value % 2; destinations must see sources in
	// source-partition order.
	ex := ExchangePartitions(r, 2, "test", func(_ int, in []int) [][]int {
		out := make([][]int, 2)
		for _, v := range in {
			out[v%2] = append(out[v%2], v)
		}
		return out
	}, nil)
	if ex.NumPartitions() != 2 {
		t.Fatalf("numParts = %d", ex.NumPartitions())
	}
	got := [][]int{ex.compute(0), ex.compute(1)}
	want := [][]int{{2, 4, 6}, {1, 3, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestExchangePartitionsWeight(t *testing.T) {
	ctx := NewContext(1)
	ctx.ResetMetrics()
	r := FromPartitions(ctx, [][][]int{{{1, 2, 3}, {4}}})
	ex := ExchangePartitions(r, 1, "w", func(_ int, in [][]int) [][][]int {
		return [][][]int{in}
	}, func(b []int) int64 { return int64(len(b)) })
	if n := len(ex.Collect()); n != 2 {
		t.Fatalf("batches = %d", n)
	}
	var metric *StageMetrics
	for _, m := range ctx.SnapshotMetrics().Stages {
		if m.Name == "w|exchange" {
			cp := m
			metric = &cp
		}
	}
	if metric == nil || metric.ShuffleRows != 4 {
		t.Fatalf("shuffle rows metric = %+v", metric)
	}
}

func TestZipPartitions(t *testing.T) {
	ctx := NewContext(2)
	a := FromPartitions(ctx, [][]int{{1, 2}, {3}})
	b := FromPartitions(ctx, [][]string{{"x"}, {"y", "z"}})
	z := ZipPartitions(a, b, func(part int, as []int, bs []string) []int {
		return []int{part, len(as), len(bs)}
	})
	got := z.Collect()
	want := []int{0, 2, 1, 1, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}
