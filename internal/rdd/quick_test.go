package rdd

import (
	"sort"
	"strconv"
	"testing"
	"testing/quick"
)

// Algebraic laws of the data-parallel substrate, checked on random inputs.

func sortedCopy(xs []int) []int {
	c := append([]int(nil), xs...)
	sort.Ints(c)
	return c
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestQuickCollectPreservesMultiset(t *testing.T) {
	prop := func(data []int, parts uint8) bool {
		ctx := NewContext(2)
		p := int(parts%8) + 1
		got := Parallelize(ctx, data, p).Collect()
		return equalInts(sortedCopy(got), sortedCopy(data))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickMapFusionLaw(t *testing.T) {
	// Map(f) then Map(g) == Map(g∘f).
	f := func(x int) int { return x*3 + 1 }
	g := func(x int) int { return x - 7 }
	prop := func(data []int, parts uint8) bool {
		ctx := NewContext(2)
		p := int(parts%6) + 1
		chained := Map(Map(Parallelize(ctx, data, p), f), g).Collect()
		fused := Map(Parallelize(ctx, data, p), func(x int) int { return g(f(x)) }).Collect()
		return equalInts(sortedCopy(chained), sortedCopy(fused))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickFilterThenCountConsistent(t *testing.T) {
	prop := func(data []int, parts uint8) bool {
		ctx := NewContext(2)
		p := int(parts%6) + 1
		pred := func(x int) bool { return x%2 == 0 }
		got := Filter(Parallelize(ctx, data, p), pred).Count()
		var want int64
		for _, x := range data {
			if pred(x) {
				want++
			}
		}
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickGroupByKeyPartition(t *testing.T) {
	// GroupByKey partitions the input: group sizes sum to the input size,
	// every element lands in the group of its key, keys are distinct.
	prop := func(data []int16, parts uint8) bool {
		ctx := NewContext(3)
		p := int(parts%6) + 1
		xs := make([]int, len(data))
		for i, d := range data {
			xs[i] = int(d)
		}
		key := func(x int) string { return strconv.Itoa(((x % 5) + 5) % 5) }
		groups := GroupByKey(Parallelize(ctx, xs, p), key).Collect()
		seen := map[string]bool{}
		total := 0
		for _, g := range groups {
			if seen[g.Key] {
				return false
			}
			seen[g.Key] = true
			for _, v := range g.Items {
				if key(v) != g.Key {
					return false
				}
			}
			total += len(g.Items)
		}
		return total == len(xs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickReduceByKeyEqualsGroupThenFold(t *testing.T) {
	prop := func(data []int16, parts uint8) bool {
		ctx := NewContext(2)
		p := int(parts%6) + 1
		xs := make([]int, len(data))
		for i, d := range data {
			xs[i] = int(d)
		}
		key := func(x int) string { return strconv.Itoa(((x % 3) + 3) % 3) }
		add := func(a, b int) int { return a + b }

		reduced := ReduceByKey(Parallelize(ctx, xs, p), key, add).Collect()
		grouped := GroupByKey(Parallelize(ctx, xs, p), key).Collect()

		sums := map[string]int{}
		for _, g := range grouped {
			for _, v := range g.Items {
				sums[g.Key] += v
			}
		}
		if len(reduced) != len(sums) {
			return false
		}
		for _, g := range reduced {
			if len(g.Items) != 1 || g.Items[0] != sums[g.Key] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickSortByIsSorted(t *testing.T) {
	prop := func(data []int, parts uint8) bool {
		ctx := NewContext(2)
		p := int(parts%6) + 1
		got := SortBy(Parallelize(ctx, data, p), func(a, b int) bool { return a < b }).Collect()
		return sort.IntsAreSorted(got) && equalInts(sortedCopy(got), sortedCopy(data))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionCountAdds(t *testing.T) {
	prop := func(a, b []int) bool {
		ctx := NewContext(2)
		u := Union(Parallelize(ctx, a, 2), Parallelize(ctx, b, 3))
		return u.Count() == int64(len(a)+len(b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinSizeIsProductOfKeyCounts(t *testing.T) {
	prop := func(a, b []uint8) bool {
		ctx := NewContext(2)
		xs := make([]int, len(a))
		for i, v := range a {
			xs[i] = int(v % 4)
		}
		ys := make([]int, len(b))
		for i, v := range b {
			ys[i] = int(v % 4)
		}
		key := func(x int) string { return strconv.Itoa(x) }
		joined := JoinHash(Parallelize(ctx, xs, 2), Parallelize(ctx, ys, 3), key, key).Count()
		// Expected size: sum over keys of count_left * count_right.
		cl := map[int]int64{}
		cr := map[int]int64{}
		for _, x := range xs {
			cl[x]++
		}
		for _, y := range ys {
			cr[y]++
		}
		var want int64
		for k, n := range cl {
			want += n * cr[k]
		}
		return joined == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
