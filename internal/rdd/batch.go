package rdd

import "sync/atomic"

// Batch-granular exchange primitives. The columnar kernels shuffle
// *frame.Frame batches rather than individual rows: a split function
// buckets each source partition's batches into destination partitions
// (typically by slicing frames on per-row hash vectors), and destinations
// receive the batches of every source in source-partition order — the same
// ordering contract shuffleExchange gives row-level shuffles, so columnar
// and row plans produce partitions in the same deterministic arrangement.

// ExchangePartitions materializes r and redistributes its elements into
// numOut partitions. split is called once per source partition (in
// parallel, under the rdd compute contract) and returns, for each
// destination, the elements that partition contributes; weight reports the
// row count an element carries for shuffle metrics (nil counts elements).
func ExchangePartitions[T any](r *RDD[T], numOut int, stage string, split func(part int, in []T) [][]T, weight func(T) int64) *RDD[T] {
	if numOut < 1 {
		numOut = 1
	}
	srcParts := r.materialize(stage+"|exchange-write", false, 0)
	buckets := make([][][]T, len(srcParts)) // [src][dst][]T
	var moved int64
	r.ctx.runTasks(len(srcParts), func(i int) {
		local := split(i, srcParts[i])
		if len(local) != numOut {
			panic("rdd.ExchangePartitions: split returned wrong destination count")
		}
		buckets[i] = local
		var w int64
		for _, dst := range local {
			for _, v := range dst {
				if weight == nil {
					w++
				} else {
					w += weight(v)
				}
			}
		}
		atomic.AddInt64(&moved, w)
	})
	dst, distributed := exchangeVia(r.ctx, r.wire, stage, numOut, buckets)
	if !distributed {
		dst = make([][]T, numOut)
		for d := 0; d < numOut; d++ {
			var n int
			for s := range buckets {
				n += len(buckets[s][d])
			}
			part := make([]T, 0, n)
			for s := range buckets {
				part = append(part, buckets[s][d]...)
			}
			dst[d] = part
		}
	}
	out := FromPartitions(r.ctx, dst)
	out.name = stage + "|exchange"
	r.ctx.recordShuffle(out.name, moved)
	return out
}

// ZipPartitions pairs two RDDs partition-by-partition: f sees partition i
// of both sides and produces partition i of the result. Both inputs must
// share a context and partition count (the columnar join aligns both sides
// with ExchangePartitions first). f runs under the rdd compute contract.
func ZipPartitions[A, B, C any](a *RDD[A], b *RDD[B], f func(part int, as []A, bs []B) []C) *RDD[C] {
	if a.ctx != b.ctx {
		panic("rdd.ZipPartitions: RDDs from different contexts")
	}
	if a.numParts != b.numParts {
		panic("rdd.ZipPartitions: partition counts differ")
	}
	return &RDD[C]{
		ctx:      a.ctx,
		name:     "zip(" + a.name + "," + b.name + ")",
		numParts: a.numParts,
		compute: func(part int) []C {
			return f(part, a.partition(part), b.partition(part))
		},
	}
}
