package rdd

import (
	"hash/fnv"
	"sync/atomic"
)

// Group is one key's bucket after a GroupByKey.
type Group[T any] struct {
	Key   string
	Items []T
}

// CoGrouped is one key's buckets from both sides of a CoGroup.
type CoGrouped[A, B any] struct {
	Key   string
	Left  []A
	Right []B
}

// Pair is a joined element.
type Pair[A, B any] struct {
	Left  A
	Right B
}

func hashKey(key string, mod int) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(mod))
}

// shuffleExchange materializes r, then hash-partitions every element by key
// into numOut buckets. It returns the destination partitions and the total
// number of rows exchanged.
func shuffleExchange[T any](r *RDD[T], key func(T) string, numOut int, stage string) ([][]T, int64) {
	srcParts := r.materialize(stage+"|shuffle-write", false, 0)
	// Per-source bucketing runs in parallel; the concatenation per
	// destination ("shuffle read") is cheap appends.
	buckets := make([][][]T, len(srcParts)) // [src][dst][]T
	var moved int64
	r.ctx.runTasks(len(srcParts), func(i int) {
		local := make([][]T, numOut)
		for _, v := range srcParts[i] {
			d := hashKey(key(v), numOut)
			local[d] = append(local[d], v)
		}
		buckets[i] = local
		atomic.AddInt64(&moved, int64(len(srcParts[i])))
	})
	// Distributed path: when the Context has a Placement and the RDD a wire
	// codec, the buckets cross the cluster data plane instead. The merged
	// payloads preserve (src, seq) order, so both paths produce identical
	// destination partitions element for element.
	if dst, ok := exchangeVia(r.ctx, r.wire, stage, numOut, buckets); ok {
		return dst, moved
	}
	dst := make([][]T, numOut)
	for d := 0; d < numOut; d++ {
		var n int
		for s := range buckets {
			n += len(buckets[s][d])
		}
		part := make([]T, 0, n)
		for s := range buckets {
			part = append(part, buckets[s][d]...)
		}
		dst[d] = part
	}
	return dst, moved
}

// GroupByKey shuffles elements so all elements with equal keys land in one
// group. Keys are strings (ScrubJay rows derive canonical key strings from
// their domain columns).
func GroupByKey[T any](r *RDD[T], key func(T) string) *RDD[Group[T]] {
	dst, moved := shuffleExchange(r, key, r.numParts, r.name+"|groupByKey")
	ctx := r.ctx
	out := &RDD[Group[T]]{
		ctx:      ctx,
		name:     r.name + "|groupByKey",
		numParts: len(dst),
		compute: func(part int) []Group[T] {
			byKey := make(map[string]int)
			var groups []Group[T]
			for _, v := range dst[part] {
				k := key(v)
				idx, ok := byKey[k]
				if !ok {
					idx = len(groups)
					byKey[k] = idx
					groups = append(groups, Group[T]{Key: k})
				}
				groups[idx].Items = append(groups[idx].Items, v)
			}
			return groups
		},
	}
	ctx.recordShuffle(out.name+"|exchange", moved)
	return out
}

// ReduceByKey combines elements sharing a key with an associative merge.
// Combining happens map-side before the exchange, so shuffle volume is one
// element per (partition, key) — the classic wordcount optimization.
func ReduceByKey[T any](r *RDD[T], key func(T) string, merge func(T, T) T) *RDD[Group[T]] {
	combined := MapPartitions(r, func(_ int, in []T) []Group[T] {
		byKey := make(map[string]int)
		var groups []Group[T]
		for _, v := range in {
			k := key(v)
			idx, ok := byKey[k]
			if !ok {
				byKey[k] = len(groups)
				groups = append(groups, Group[T]{Key: k, Items: []T{v}})
				continue
			}
			groups[idx].Items[0] = merge(groups[idx].Items[0], v)
		}
		return groups
	})
	combined.name = r.name + "|reduceByKey-local"
	grouped := GroupByKey(combined, func(g Group[T]) string { return g.Key })
	out := Map(grouped, func(g Group[Group[T]]) Group[T] {
		acc := g.Items[0].Items[0]
		for _, sub := range g.Items[1:] {
			acc = merge(acc, sub.Items[0])
		}
		return Group[T]{Key: g.Key, Items: []T{acc}}
	})
	out.name = r.name + "|reduceByKey"
	return out
}

// CoGroup shuffles two RDDs by key so that, per key, all left and right
// elements meet in one partition. It is the primitive beneath ScrubJay's
// natural join.
func CoGroup[A, B any](a *RDD[A], b *RDD[B], keyA func(A) string, keyB func(B) string) *RDD[CoGrouped[A, B]] {
	if a.ctx != b.ctx {
		panic("rdd.CoGroup: RDDs from different contexts")
	}
	numOut := a.numParts
	if b.numParts > numOut {
		numOut = b.numParts
	}
	dstA, movedA := shuffleExchange(a, keyA, numOut, a.name+"|cogroup-left")
	dstB, movedB := shuffleExchange(b, keyB, numOut, b.name+"|cogroup-right")
	ctx := a.ctx
	out := &RDD[CoGrouped[A, B]]{
		ctx:      ctx,
		name:     "cogroup(" + a.name + "," + b.name + ")",
		numParts: numOut,
		compute: func(part int) []CoGrouped[A, B] {
			byKey := make(map[string]int)
			var groups []CoGrouped[A, B]
			at := func(k string) int {
				idx, ok := byKey[k]
				if !ok {
					idx = len(groups)
					byKey[k] = idx
					groups = append(groups, CoGrouped[A, B]{Key: k})
				}
				return idx
			}
			for _, v := range dstA[part] {
				idx := at(keyA(v))
				groups[idx].Left = append(groups[idx].Left, v)
			}
			for _, v := range dstB[part] {
				idx := at(keyB(v))
				groups[idx].Right = append(groups[idx].Right, v)
			}
			return groups
		},
	}
	ctx.recordShuffle(out.name+"|exchange", movedA+movedB)
	return out
}

// JoinHash computes the inner hash join of a and b on string keys,
// producing the cross product of matching groups.
func JoinHash[A, B any](a *RDD[A], b *RDD[B], keyA func(A) string, keyB func(B) string) *RDD[Pair[A, B]] {
	cg := CoGroup(a, b, keyA, keyB)
	out := FlatMap(cg, func(g CoGrouped[A, B]) []Pair[A, B] {
		if len(g.Left) == 0 || len(g.Right) == 0 {
			return nil
		}
		pairs := make([]Pair[A, B], 0, len(g.Left)*len(g.Right))
		for _, l := range g.Left {
			for _, r := range g.Right {
				pairs = append(pairs, Pair[A, B]{Left: l, Right: r})
			}
		}
		return pairs
	})
	out.name = "join(" + a.name + "," + b.name + ")"
	return out
}

// BroadcastJoin joins a large RDD against a small right side by replicating
// the right side to every partition, avoiding a shuffle of the left side.
// It is the ablation comparator for JoinHash on small dimension tables
// (e.g. the node-layout dataset).
func BroadcastJoin[A, B any](a *RDD[A], small []B, keyA func(A) string, keyB func(B) string) *RDD[Pair[A, B]] {
	index := make(map[string][]B)
	for _, v := range small {
		k := keyB(v)
		index[k] = append(index[k], v)
	}
	out := FlatMap(a, func(l A) []Pair[A, B] {
		matches := index[keyA(l)]
		if len(matches) == 0 {
			return nil
		}
		pairs := make([]Pair[A, B], len(matches))
		for i, r := range matches {
			pairs[i] = Pair[A, B]{Left: l, Right: r}
		}
		return pairs
	})
	out.name = "broadcastJoin(" + a.name + ")"
	return out
}

// Repartition redistributes elements round-robin into numParts partitions
// (a full shuffle).
func Repartition[T any](r *RDD[T], numParts int) *RDD[T] {
	if numParts < 1 {
		numParts = 1
	}
	srcParts := r.materialize(r.name+"|repartition-write", false, 0)
	var all []T
	for _, p := range srcParts {
		all = append(all, p...)
	}
	out := Parallelize(r.ctx, all, numParts)
	out.name = r.name + "|repartition"
	r.ctx.recordShuffle(out.name, int64(len(all)))
	return out
}

// Distinct removes duplicate elements, where identity is the key function's
// string (rows use their canonical rendering). One exchange, then local
// dedup per partition.
func Distinct[T any](r *RDD[T], key func(T) string) *RDD[T] {
	grouped := GroupByKey(r, key)
	out := Map(grouped, func(g Group[T]) T { return g.Items[0] })
	out.name = r.name + "|distinct"
	return out
}

// CountByKey returns the number of elements per key, computed with map-side
// combining so shuffle volume is one counter per (partition, key).
func CountByKey[T any](r *RDD[T], key func(T) string) map[string]int64 {
	type kc struct {
		k string
		n int64
	}
	local := MapPartitions(r, func(_ int, in []T) []kc {
		m := map[string]int64{}
		for _, v := range in {
			m[key(v)]++
		}
		out := make([]kc, 0, len(m))
		for k, n := range m {
			out = append(out, kc{k, n})
		}
		return out
	})
	local.name = r.name + "|countByKey-local"
	reduced := ReduceByKey(local, func(e kc) string { return e.k }, func(a, b kc) kc {
		a.n += b.n
		return a
	})
	out := map[string]int64{}
	for _, g := range reduced.Collect() {
		out[g.Key] = g.Items[0].n
	}
	return out
}
