package rdd

import (
	"strconv"
	"testing"
	"time"

	"scrubjay/internal/obs"
)

// runShuffleJob executes the same groupByKey job every trace test uses:
// 3 source partitions of 4 ints each, grouped by parity, then collected.
func runShuffleJob(ctx *Context) {
	r := FromPartitions(ctx, [][]int{{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}})
	g := GroupByKey(r, func(v int) string { return strconv.Itoa(v % 2) })
	if got := len(g.Collect()); got != 2 {
		panic("groups = " + strconv.Itoa(got))
	}
}

// TestMetricsFromSpansShape pins the legacy StageMetrics shape: deriving
// Metrics from the span tree must produce the same stage sequence the old
// parallel stage log recorded.
func TestMetricsFromSpansShape(t *testing.T) {
	ctx := NewContext(2)
	ctx.ResetMetrics()
	runShuffleJob(ctx)
	m := ctx.SnapshotMetrics()

	wantStages := []struct {
		name    string
		shuffle bool
		rows    int64
		tasks   int
	}{
		{"fromPartitions|groupByKey|shuffle-write", false, 0, 3},
		{"fromPartitions|groupByKey|exchange", true, 12, 0},
		{"fromPartitions|groupByKey|collect", false, 0, 3},
	}
	if len(m.Stages) != len(wantStages) {
		t.Fatalf("stages = %d, want %d: %+v", len(m.Stages), len(wantStages), m.Stages)
	}
	for i, want := range wantStages {
		st := m.Stages[i]
		if st.ID != i {
			t.Errorf("stage %d: ID = %d", i, st.ID)
		}
		if st.Name != want.name {
			t.Errorf("stage %d: name = %q, want %q", i, st.Name, want.name)
		}
		if st.Shuffle != want.shuffle || st.ShuffleRows != want.rows {
			t.Errorf("stage %d: shuffle = %v/%d, want %v/%d",
				i, st.Shuffle, st.ShuffleRows, want.shuffle, want.rows)
		}
		if len(st.Tasks) != want.tasks {
			t.Errorf("stage %d: tasks = %d, want %d", i, len(st.Tasks), want.tasks)
		}
		for p, task := range st.Tasks {
			if task.Partition != p {
				t.Errorf("stage %d task %d: partition = %d", i, p, task.Partition)
			}
		}
	}
	if m.TotalShuffleRows() != 12 {
		t.Errorf("TotalShuffleRows = %d, want 12", m.TotalShuffleRows())
	}
	// Per-task row counts: the write stage re-emits its 4-row inputs.
	var rows int64
	for _, task := range m.Stages[0].Tasks {
		rows += task.RowsOut
	}
	if rows != 12 {
		t.Errorf("write-stage rows out = %d, want 12", rows)
	}
}

// TestSimulateMakespanFromSpans pins satellite invariant: SimulateMakespan
// over span-derived Metrics equals SimulateMakespan over an identical
// hand-built legacy Metrics value — the span tree is a drop-in source.
func TestSimulateMakespanFromSpans(t *testing.T) {
	ctx := NewContext(2)
	// Frozen clock: every task records zero duration, so the makespan is
	// exactly the shuffle term and fully deterministic.
	tr := obs.NewTracer("m", obs.FrozenClock())
	root := tr.Start(obs.KindExec, "m")
	ctx.SetSpan(root)
	ctx.mroot.Store(root)
	runShuffleJob(ctx)
	derived := ctx.SnapshotMetrics()

	legacy := Metrics{Stages: []StageMetrics{
		{Name: "fromPartitions|groupByKey|shuffle-write", Tasks: make([]TaskMetrics, 3)},
		{Name: "fromPartitions|groupByKey|exchange", Shuffle: true, ShuffleRows: 12},
		{Name: "fromPartitions|groupByKey|collect", Tasks: make([]TaskMetrics, 3)},
	}}
	cl := PaperCluster(4)
	got := SimulateMakespan(derived, cl)
	want := SimulateMakespan(legacy, cl)
	if got != want {
		t.Fatalf("makespan from spans = %v, from legacy metrics = %v", got, want)
	}
	// And both match the analytic formula: one shuffle of 12 rows.
	bytes := 12 * cl.RowBytes
	bw := float64(cl.Nodes) * cl.NodeShuffleBandwidth
	analytic := time.Duration(bytes/bw*float64(time.Second)) + cl.ShuffleLatency
	if got != analytic {
		t.Fatalf("makespan = %v, analytic = %v", got, analytic)
	}
}

// TestUntracedRecordsNothing pins the opt-in contract: without ResetMetrics
// or SetSpan, execution records no stages.
func TestUntracedRecordsNothing(t *testing.T) {
	ctx := NewContext(2)
	runShuffleJob(ctx)
	if m := ctx.SnapshotMetrics(); len(m.Stages) != 0 {
		t.Fatalf("untraced context recorded %d stages", len(m.Stages))
	}
}

// TestWithGoContextCarriesScope pins that the serving layer's pattern —
// scope the base context, then bind a request context — keeps tracing.
func TestWithGoContextCarriesScope(t *testing.T) {
	base := NewContext(2)
	tr := obs.NewTracer("t", obs.FrozenClock())
	root := tr.Start(obs.KindQuery, "q")
	base.SetSpan(root)
	bound := base.WithGoContext(t.Context())
	if bound.Span() != root {
		t.Fatal("WithGoContext dropped the trace scope")
	}
	runShuffleJob(bound)
	if stages := root.Children(); len(stages) != 3 {
		t.Fatalf("bound context recorded %d stages, want 3", len(stages))
	}
}
