package rdd

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"
)

// fakePlacement is an in-memory Placement implementing the documented merge
// contract (concatenate enc[src][dst] in ascending src order). It records
// how many exchanges it served so tests can assert the distributed path
// actually ran.
type fakePlacement struct {
	exchanges int
	fail      error
}

func (p *fakePlacement) Exchange(ctx context.Context, stage string, numOut int, enc [][][]byte) ([][]byte, error) {
	if p.fail != nil {
		return nil, p.fail
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.exchanges++
	out := make([][]byte, numOut)
	for d := 0; d < numOut; d++ {
		var merged []byte
		for s := range enc {
			merged = append(merged, enc[s][d]...)
		}
		out[d] = merged
	}
	return out, nil
}

var intWire = &Wire[int]{
	Append: func(buf []byte, v int) []byte { return binary.AppendVarint(buf, int64(v)) },
	Decode: func(b []byte) (int, int, error) {
		v, n := binary.Varint(b)
		if n <= 0 {
			return 0, 0, fmt.Errorf("truncated int")
		}
		return int(v), n, nil
	},
}

func sortedGroups(gs []Group[int]) []Group[int] {
	out := append([]Group[int](nil), gs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	for _, g := range out {
		sort.Ints(g.Items)
	}
	return out
}

// TestGroupByKeyDistributedMatchesLocal pins the bit-for-bit contract at
// the rdd layer: the same GroupByKey over the same data produces identical
// groups (keys, members, and order) with and without a Placement.
func TestGroupByKeyDistributedMatchesLocal(t *testing.T) {
	data := make([]int, 500)
	for i := range data {
		data[i] = i * 7 % 131
	}
	key := func(v int) string { return fmt.Sprintf("k%d", v%13) }

	local := GroupByKey(Parallelize(NewContext(4), data, 8), key).Collect()

	fake := &fakePlacement{}
	ctx := NewContext(4).WithPlacement(fake)
	dist := GroupByKey(WithWire(Parallelize(ctx, data, 8), intWire), key).Collect()

	if fake.exchanges == 0 {
		t.Fatal("distributed path never ran")
	}
	// Element order inside partitions must match exactly, which makes the
	// raw Collect outputs comparable without sorting.
	if !reflect.DeepEqual(local, dist) {
		t.Fatalf("distributed grouping differs from local:\nlocal %v\ndist  %v", sortedGroups(local), sortedGroups(dist))
	}
}

// TestExchangePartitionsDistributedMatchesLocal does the same for the
// batch-granular exchange.
func TestExchangePartitionsDistributedMatchesLocal(t *testing.T) {
	data := make([]int, 300)
	for i := range data {
		data[i] = i
	}
	const numOut = 5
	split := func(_ int, in []int) [][]int {
		out := make([][]int, numOut)
		for _, v := range in {
			d := v % numOut
			out[d] = append(out[d], v)
		}
		return out
	}

	run := func(p Placement) [][]int {
		c := NewContext(4)
		if p != nil {
			c = c.WithPlacement(p)
		}
		r := WithWire(Parallelize(c, data, 6), intWire)
		ex := ExchangePartitions(r, numOut, "test-exchange", split, nil)
		parts := make([][]int, ex.NumPartitions())
		for i := range parts {
			parts[i] = ex.partition(i)
		}
		return parts
	}

	fake := &fakePlacement{}
	local, dist := run(nil), run(fake)
	if fake.exchanges != 1 {
		t.Fatalf("expected 1 exchange, saw %d", fake.exchanges)
	}
	if !reflect.DeepEqual(local, dist) {
		t.Fatalf("distributed exchange differs:\nlocal %v\ndist  %v", local, dist)
	}
}

// TestNoWireStaysLocal: an RDD without a wire shuffles in-process even when
// the Context has a Placement.
func TestNoWireStaysLocal(t *testing.T) {
	fake := &fakePlacement{}
	ctx := NewContext(2).WithPlacement(fake)
	got := GroupByKey(Parallelize(ctx, []int{1, 2, 3, 4}, 2), func(v int) string { return fmt.Sprint(v % 2) }).Collect()
	if fake.exchanges != 0 {
		t.Fatalf("wire-less shuffle used the placement (%d exchanges)", fake.exchanges)
	}
	if len(got) != 2 {
		t.Fatalf("got %d groups", len(got))
	}
}

// TestExchangeFailureSurfacesAsError: a placement failure reaches the
// caller as *ExecFailure through Guard, not as a raw panic.
func TestExchangeFailureSurfacesAsError(t *testing.T) {
	fake := &fakePlacement{fail: errors.New("cluster down")}
	ctx := NewContext(2).WithPlacement(fake)
	r := WithWire(Parallelize(ctx, []int{1, 2, 3}, 2), intWire)
	_, err := Guard(func() []Group[int] {
		return GroupByKey(r, func(v int) string { return "k" }).Collect()
	})
	var ef *ExecFailure
	if !errors.As(err, &ef) {
		t.Fatalf("want *ExecFailure, got %v", err)
	}
}

// TestExchangeCancellationSurfacesAsCanceled: a placement error caused by
// context cancellation converts to *Canceled, matching the in-process
// cancellation contract.
func TestExchangeCancellationSurfacesAsCanceled(t *testing.T) {
	fake := &fakePlacement{fail: context.Canceled}
	ctx := NewContext(2).WithPlacement(fake)
	r := WithWire(Parallelize(ctx, []int{1, 2, 3}, 2), intWire)
	_, err := Guard(func() []Group[int] {
		return GroupByKey(r, func(v int) string { return "k" }).Collect()
	})
	var c *Canceled
	if !errors.As(err, &c) {
		t.Fatalf("want *Canceled, got %v", err)
	}
}

// TestWithPlacementCarriesThroughWithGoContext: the serving layer derives
// contexts via WithGoContext after WithPlacement; the placement must ride
// along.
func TestWithPlacementCarriesThroughWithGoContext(t *testing.T) {
	fake := &fakePlacement{}
	c := NewContext(2).WithPlacement(fake).WithGoContext(context.Background())
	if c.Placement() != fake {
		t.Fatal("WithGoContext dropped the placement")
	}
}
