package rdd

import (
	"container/heap"
	"sort"
	"time"
)

// Cluster describes a simulated data cluster onto which a recorded task log
// is replayed. It models the two effects that dominate Spark job time in
// the paper's evaluation (§6): dividing per-partition compute across
// parallel executors, and the shuffle barrier whose cost scales with data
// volume and improves with node count (more aggregate NIC bandwidth).
type Cluster struct {
	// Nodes and CoresPerNode define the executor count. The paper's
	// evaluation cluster is 10 nodes x 32 cores.
	Nodes        int
	CoresPerNode int
	// RowBytes estimates the serialized size of one shuffled row.
	RowBytes float64
	// NodeShuffleBandwidth is the per-node shuffle throughput in bytes/sec
	// (network + serialization). Aggregate bandwidth grows with Nodes.
	NodeShuffleBandwidth float64
	// ShuffleLatency is the fixed per-shuffle barrier cost (task launch,
	// coordination), independent of data volume.
	ShuffleLatency time.Duration
}

// PaperCluster returns the evaluation cluster from §6 of the paper:
// 10 nodes, 32 cores per node. Bandwidth and latency constants are chosen
// to sit in the regime the paper reports (joins of tens of millions of rows
// complete in seconds to minutes, and strong scaling flattens but does not
// invert at 10 nodes).
func PaperCluster(nodes int) Cluster {
	return Cluster{
		Nodes:                nodes,
		CoresPerNode:         32,
		RowBytes:             64,
		NodeShuffleBandwidth: 200e6,
		ShuffleLatency:       250 * time.Millisecond,
	}
}

// Executors returns the simulated executor count.
func (c Cluster) Executors() int {
	n := c.Nodes * c.CoresPerNode
	if n < 1 {
		return 1
	}
	return n
}

type execHeap []time.Duration

func (h execHeap) Len() int           { return len(h) }
func (h execHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h execHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *execHeap) Push(x any)        { *h = append(*h, x.(time.Duration)) }
func (h *execHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// scheduleLPT computes the makespan of scheduling task durations onto m
// executors using longest-processing-time-first list scheduling, the same
// greedy placement Spark's scheduler approximates.
func scheduleLPT(durations []time.Duration, m int) time.Duration {
	if len(durations) == 0 {
		return 0
	}
	if m < 1 {
		m = 1
	}
	sorted := make([]time.Duration, len(durations))
	copy(sorted, durations)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	h := make(execHeap, m)
	heap.Init(&h)
	for _, d := range sorted {
		least := heap.Pop(&h).(time.Duration)
		heap.Push(&h, least+d)
	}
	var makespan time.Duration
	for _, load := range h {
		if load > makespan {
			makespan = load
		}
	}
	return makespan
}

// SimulateMakespan replays a recorded task log onto the cluster and returns
// the simulated wall-clock time. Stages execute in order (shuffles are
// barriers). Each stage contributes its LPT makespan over the cluster's
// executors; shuffle stages additionally contribute transfer time
// rows*RowBytes / (Nodes*NodeShuffleBandwidth) plus the fixed latency.
func SimulateMakespan(m Metrics, cl Cluster) time.Duration {
	var total time.Duration
	for _, stage := range m.Stages {
		durations := make([]time.Duration, len(stage.Tasks))
		for i, t := range stage.Tasks {
			durations[i] = t.Duration
		}
		total += scheduleLPT(durations, cl.Executors())
		if stage.Shuffle {
			bytes := float64(stage.ShuffleRows) * cl.RowBytes
			bw := float64(cl.Nodes) * cl.NodeShuffleBandwidth
			if bw > 0 {
				total += time.Duration(bytes / bw * float64(time.Second))
			}
			total += cl.ShuffleLatency
		}
	}
	return total
}
