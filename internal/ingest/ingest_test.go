package ingest

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"scrubjay/internal/kvstore"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
	"scrubjay/internal/wrappers"
)

func metricSchema() semantics.Schema {
	return semantics.NewSchema(
		"time", semantics.TimeDomain(),
		"node", semantics.IDDomain("compute_node"),
		"load", semantics.ValueEntry("fraction", "fraction"),
	)
}

func metricRow(i int) value.Row {
	return value.NewRow(
		"time", value.TimeNanos(int64(i)*1e9),
		"node", value.Str(fmt.Sprintf("n%d", i%4)),
		"load", value.Float(float64(i%100)/100),
	)
}

func TestIngestThenLoadViaWrapper(t *testing.T) {
	dir := t.TempDir()
	store, err := kvstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := Open(store, "ldms", metricSchema(), Config{BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := ing.Ingest(metricRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if ing.Ingested() < 80 {
		t.Errorf("batched flushes should have run: %d durable", ing.Ingested())
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if ing.Ingested() != n || ing.Pending() != 0 {
		t.Errorf("after close: %d durable, %d pending", ing.Ingested(), ing.Pending())
	}
	store.Close()

	// The ingested table is a regular kv-wrapper dataset.
	ctx := rdd.NewContext(2)
	ds, err := wrappers.Read(ctx, wrappers.Source{Format: "kv", Path: dir, Table: "ldms"})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Count() != n {
		t.Fatalf("loaded %d rows, want %d", ds.Count(), n)
	}
	if !ds.Schema().Equal(metricSchema()) {
		t.Error("schema mismatch")
	}
	// Rows arrive in insertion order.
	rows := ds.Collect()
	if rows[0].Get("time").TimeNanosVal() != 0 || rows[n-1].Get("time").TimeNanosVal() != int64(n-1)*1e9 {
		t.Error("insertion order lost")
	}
	if err := ds.Validate(semantics.DefaultDictionary()); err != nil {
		t.Errorf("ingested dataset invalid: %v", err)
	}
}

func TestIngestResumeAppends(t *testing.T) {
	dir := t.TempDir()
	store, _ := kvstore.Open(dir)
	ing, err := Open(store, "t", metricSchema(), Config{BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ing.Ingest(metricRow(i))
	}
	ing.Close()

	// Re-open and continue: rows append after the existing ones.
	ing2, err := Open(store, "t", metricSchema(), Config{BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ing2.Ingested() != 10 {
		t.Fatalf("resumed at %d, want 10", ing2.Ingested())
	}
	for i := 10; i < 15; i++ {
		ing2.Ingest(metricRow(i))
	}
	ing2.Close()
	store.Close()

	ctx := rdd.NewContext(1)
	ds, err := wrappers.Read(ctx, wrappers.Source{Format: "kv", Path: dir, Table: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Count() != 15 {
		t.Errorf("count = %d, want 15", ds.Count())
	}
}

func TestIngestSchemaConflict(t *testing.T) {
	store, _ := kvstore.Open(t.TempDir())
	ing, err := Open(store, "t", metricSchema(), Config{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	ing.Close()
	other := semantics.NewSchema("x", semantics.IDDomain("rack"))
	if _, err := Open(store, "t", other, Config{}); err == nil {
		t.Error("conflicting schema should fail")
	}
	// Same schema is fine.
	if _, err := Open(store, "t", metricSchema(), Config{}); err != nil {
		t.Errorf("same schema should resume: %v", err)
	}
}

func TestIngestBackgroundFlusher(t *testing.T) {
	store, _ := kvstore.Open(t.TempDir())
	ing, err := Open(store, "t", metricSchema(), Config{BatchSize: 1000, FlushInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ing.Ingest(metricRow(0))
	deadline := time.Now().Add(2 * time.Second)
	for ing.Ingested() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if ing.Ingested() != 1 {
		t.Error("background flusher never flushed")
	}
	ing.Close()
}

func TestIngestConcurrentProducers(t *testing.T) {
	dir := t.TempDir()
	store, _ := kvstore.Open(dir)
	ing, err := Open(store, "t", metricSchema(), Config{BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const producers, each = 8, 50
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := ing.Ingest(metricRow(p*each + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	store.Close()
	ctx := rdd.NewContext(2)
	ds, err := wrappers.Read(ctx, wrappers.Source{Format: "kv", Path: dir, Table: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Count() != producers*each {
		t.Errorf("count = %d, want %d", ds.Count(), producers*each)
	}
}

func TestIngestAfterCloseFails(t *testing.T) {
	store, _ := kvstore.Open(t.TempDir())
	ing, _ := Open(store, "t", metricSchema(), Config{})
	ing.Close()
	if err := ing.Ingest(metricRow(0)); err == nil {
		t.Error("ingest after close should fail")
	}
	if err := ing.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}
