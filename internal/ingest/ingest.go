// Package ingest implements the continuous-collection path of the paper's
// deployment (§2, §7.1): monitoring producers (an LDMS-style metric
// service, counter samplers) stream records into tables of the embedded
// key-value store, from which ScrubJay's kv wrapper loads them for
// analysis. Records buffer in memory and flush in batches — the shape of
// any real telemetry ingester — with a background ticker bounding how stale
// the durable table may be. Tables written here are exactly the kv-wrapper
// format: binary rows plus a JSON schema record, appended in arrival order.
package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"scrubjay/internal/kvstore"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
	"scrubjay/internal/wrappers"
)

// Config tunes an Ingester.
type Config struct {
	// BatchSize is the number of buffered rows that triggers a flush.
	BatchSize int
	// FlushInterval bounds buffering time; <= 0 disables the background
	// flusher (flushes then happen only on BatchSize and Close).
	FlushInterval time.Duration
}

// DefaultConfig buffers 256 rows for at most one second.
func DefaultConfig() Config {
	return Config{BatchSize: 256, FlushInterval: time.Second}
}

// Ingester appends rows to one kv table.
type Ingester struct {
	cfg Config

	mu     sync.Mutex
	tbl    *kvstore.Table
	buf    []value.Row
	next   int
	closed bool

	stopFlusher chan struct{}
	flusherDone chan struct{}
}

// Open prepares ingestion into store/table with the given schema. If the
// table already holds rows (a previous ingestion run), new rows append
// after them; an existing schema record must match the provided schema.
func Open(store *kvstore.Store, table string, schema semantics.Schema, cfg Config) (*Ingester, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	tbl, err := store.Table(table)
	if err != nil {
		return nil, err
	}
	schemaData, err := json.Marshal(schema)
	if err != nil {
		return nil, err
	}
	if prev, err := tbl.Get(wrappers.SchemaKey); err == nil {
		var prevSchema semantics.Schema
		if err := json.Unmarshal(prev, &prevSchema); err != nil {
			return nil, fmt.Errorf("ingest: table %q has a corrupt schema record: %w", table, err)
		}
		if !prevSchema.Equal(schema) {
			return nil, fmt.Errorf("ingest: table %q already has a different schema", table)
		}
	} else if err := tbl.Put(wrappers.SchemaKey, schemaData); err != nil {
		return nil, err
	}
	ing := &Ingester{
		cfg:  cfg,
		tbl:  tbl,
		next: len(tbl.Keys("row:")),
	}
	if cfg.FlushInterval > 0 {
		ing.stopFlusher = make(chan struct{})
		ing.flusherDone = make(chan struct{})
		go ing.flusher()
	}
	return ing, nil
}

func (ing *Ingester) flusher() {
	defer close(ing.flusherDone)
	ticker := time.NewTicker(ing.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			ing.Flush()
		case <-ing.stopFlusher:
			return
		}
	}
}

// Ingest buffers one row; it flushes synchronously when the batch fills.
// Safe for concurrent use.
func (ing *Ingester) Ingest(row value.Row) error {
	ing.mu.Lock()
	if ing.closed {
		ing.mu.Unlock()
		return errors.New("ingest: ingester closed")
	}
	ing.buf = append(ing.buf, row)
	full := len(ing.buf) >= ing.cfg.BatchSize
	ing.mu.Unlock()
	if full {
		return ing.Flush()
	}
	return nil
}

// Pending reports the number of buffered, unflushed rows.
func (ing *Ingester) Pending() int {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return len(ing.buf)
}

// Ingested reports the number of rows durably appended so far.
func (ing *Ingester) Ingested() int {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.next
}

// Flush appends all buffered rows to the table and syncs the log.
func (ing *Ingester) Flush() error {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.flushLocked()
}

func (ing *Ingester) flushLocked() error {
	if len(ing.buf) == 0 {
		return nil
	}
	for _, row := range ing.buf {
		if err := ing.tbl.Put(wrappers.RowKey(ing.next), row.AppendBinary(nil)); err != nil {
			return err
		}
		ing.next++
	}
	ing.buf = ing.buf[:0]
	return ing.tbl.Flush()
}

// Close flushes remaining rows and stops the background flusher. The
// underlying store stays open (it may serve other tables).
func (ing *Ingester) Close() error {
	ing.mu.Lock()
	if ing.closed {
		ing.mu.Unlock()
		return nil
	}
	ing.closed = true
	err := ing.flushLocked()
	ing.mu.Unlock()
	if ing.stopFlusher != nil {
		close(ing.stopFlusher)
		<-ing.flusherDone
	}
	return err
}
