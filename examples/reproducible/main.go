// Reproducible demonstrates ScrubJay's reproducible derivation sequences
// (§5.4): solve a query once, serialize the derivation sequence to
// human-editable JSON, reload it, and re-execute it — including against
// data unwrapped to and rewrapped from disk — obtaining identical results.
// It also shows the opt-in derivation-result cache reusing a shared
// expensive prefix across two different pipelines.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"scrubjay/internal/bench"
	"scrubjay/internal/cache"
	"scrubjay/internal/engine"
	"scrubjay/internal/pipeline"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/wrappers"
)

func main() {
	dir, err := os.MkdirTemp("", "scrubjay-repro")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	ctx := rdd.NewContext(0)
	dict := semantics.DefaultDictionary()

	// Simulate the first DAT and unwrap its datasets to JSON-lines files —
	// the shareable on-disk form.
	cfg := bench.DefaultCaseStudyConfig()
	cfg.Racks = 6
	cfg.NodesPerRack = 8
	cfg.AMGRack = 4
	cfg.DAT1DurationSec = 3600
	cat, schemas, _ := bench.DAT1Catalog(ctx, cfg)
	for name, ds := range cat {
		path := filepath.Join(dir, name+".jsonl")
		if err := wrappers.Write(ds, wrappers.Source{Format: "jsonl", Path: path}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("unwrapped %d datasets to %s\n", len(cat), dir)

	// Solve the §7.2 query and store the derivation sequence.
	e := engine.New(dict, schemas, engine.DefaultOptions())
	plan, err := e.Solve(context.Background(), bench.Fig5Query())
	if err != nil {
		log.Fatal(err)
	}
	planPath := filepath.Join(dir, "jobs-x-heat.plan.json")
	data, err := plan.Encode()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(planPath, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derivation sequence stored at %s (%d bytes, hash %s)\n",
		planPath, len(data), plan.Hash())

	// A different analyst, a different process: reload everything from
	// disk and replay the stored sequence.
	stored, err := os.ReadFile(planPath)
	if err != nil {
		log.Fatal(err)
	}
	replayPlan, err := pipeline.Decode(stored)
	if err != nil {
		log.Fatal(err)
	}
	replayCat := pipeline.Catalog{}
	for name := range cat {
		ds, err := wrappers.Read(ctx, wrappers.Source{
			Format: "jsonl", Path: filepath.Join(dir, name+".jsonl"), Name: name})
		if err != nil {
			log.Fatal(err)
		}
		replayCat[name] = ds
	}

	// Execute with the derivation-result cache enabled, twice: the second
	// run is served from the cache.
	c, err := cache.Open(filepath.Join(dir, "cache"), 64<<20)
	if err != nil {
		log.Fatal(err)
	}
	first, err := pipeline.Execute(context.Background(), ctx, replayPlan, replayCat, dict, pipeline.ExecOptions{Cache: c})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed: %d rows; cache now holds %d entries (%d bytes)\n",
		first.Count(), c.Len(), c.TotalBytes())
	second, err := pipeline.Execute(context.Background(), ctx, replayPlan, replayCat, dict, pipeline.ExecOptions{Cache: c})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed again from cache: %d rows (identical: %v)\n",
		second.Count(), first.Count() == second.Count())

	// Reproducibility check: original in-memory execution matches the
	// stored-and-replayed execution row for row.
	orig, err := pipeline.Execute(context.Background(), ctx, plan, cat, dict, pipeline.ExecOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cols := orig.Schema().Columns()
	a := orig.SortedBy(cols...)
	b := first.SortedBy(cols...)
	same := len(a) == len(b)
	for i := 0; same && i < len(a); i++ {
		same = a[i].Equal(b[i])
	}
	fmt.Printf("original vs replayed results identical: %v (%d rows)\n", same, len(a))
	if !same {
		os.Exit(1)
	}
}
