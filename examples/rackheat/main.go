// Rackheat reproduces the paper's first case study (§7.2): which
// applications drive facility heat generation? It simulates a facility and
// a heterogeneous dedicated-access-time session, queries ScrubJay for
// application names (jobs) and heat (racks), and prints the heat profile of
// the hottest rack — the paper's Figure 4.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"scrubjay/internal/bench"
)

func main() {
	racks := flag.Int("racks", 10, "number of racks")
	perRack := flag.Int("nodes-per-rack", 24, "nodes per rack")
	amgRack := flag.Int("amg-rack", 7, "rack hosting the AMG job")
	duration := flag.Int64("duration", 5400, "session duration in seconds")
	flag.Parse()

	cfg := bench.DefaultCaseStudyConfig()
	cfg.Racks = *racks
	cfg.NodesPerRack = *perRack
	cfg.AMGRack = *amgRack
	cfg.DAT1DurationSec = *duration

	res, err := bench.RunFig4(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derivation sequence found by the engine:\n%s\n", res.Plan)
	fmt.Printf("derived dataset: %d rows relating jobs to rack heat\n\n", res.JoinedRows)
	fmt.Printf("hottest (rack, application): (%s, %s)\n\n", res.HottestRack, res.HottestApp)
	fmt.Println("heat profile of the hottest rack (top/mid/bot), like Figure 4:")
	for _, p := range res.Profiles {
		fmt.Printf("  %-22s %s\n", p.Label, p.Sparkline(60))
	}
	fmt.Println()
	bench.PrintAll(os.Stdout, res.Profiles)
}
