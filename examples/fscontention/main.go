// Fscontention reproduces the paper's opening example (§1): "Consider a set
// of CPU instruction samples, each annotated with latency and CPU id. We
// may also collect periodic counts of read and write events to the parallel
// filesystem. In order to determine whether IPC was affected by the
// utilization of the parallel filesystem, we need to associate specific
// instructions with filesystem events."
//
// ScrubJay derives that association automatically: the node→server
// attachment table bridges instruction samples to the right filesystem's
// counters, rates derive from the cumulative counters, and the
// interpolation join lines up the mismatched cadences.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"

	"scrubjay/internal/analysis"
	"scrubjay/internal/engine"
	"scrubjay/internal/facility"
	"scrubjay/internal/pipeline"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/workload"
)

func main() {
	duration := flag.Int64("duration", 1200, "observation window in seconds")
	nodes := flag.Int("nodes", 4, "instrumented nodes")
	flag.Parse()

	ctx := rdd.NewContext(0)
	dict := semantics.DefaultDictionary()
	f := facility.New(facility.Config{Racks: 1, NodesPerRack: *nodes, Seed: 3})
	fc := workload.DefaultFSConfig()

	cat := pipeline.Catalog{
		"instruction_samples": workload.SimulateInstructionSamples(ctx, fc, f.Nodes(), 4, 0, *duration, 8),
		"fs_counters":         workload.SimulateFSCounters(ctx, fc, 0, *duration, 4),
		"fs_map":              workload.FSMap(ctx, f.Nodes(), fc, 2),
	}
	schemas := map[string]semantics.Schema{
		"instruction_samples": workload.InstructionSamplesSchema(),
		"fs_counters":         workload.FSCountersSchema(),
		"fs_map":              workload.FSMapSchema(),
	}

	q := engine.Query{
		Domains: []string{"cpu", "filesystem"},
		Values: []engine.QueryValue{
			{Dimension: "time_duration"},            // instruction latency
			{Dimension: "operations/time_duration"}, // filesystem op rates
		},
	}
	e := engine.New(dict, schemas, engine.DefaultOptions())
	plan, err := e.Solve(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n\nderivation sequence:\n%s\n", q, plan)

	result, err := pipeline.Execute(context.Background(), ctx, plan, cat, dict, pipeline.ExecOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rows := result.Collect()
	fmt.Printf("derived dataset: %d rows associating instructions with filesystem events\n\n", len(rows))

	// Distributed statistics over the derived dataset (Figure 2's
	// modeling/analysis stage).
	if r, err := analysis.Pearson(result, "write_ops_rate", "latency"); err == nil {
		fmt.Printf("Pearson correlation (FS write rate vs instruction latency): r = %.3f\n", r)
	}
	if fit, err := analysis.LinearFit(result, "write_ops_rate", "latency"); err == nil {
		fmt.Printf("least-squares: latency_µs %s\n\n", fit)
	}

	// Bucket instruction latency by observed filesystem write rate.
	type obs struct{ rate, latency float64 }
	var all []obs
	for _, r := range rows {
		rate, ok1 := r.Get("write_ops_rate").AsFloat()
		lat, ok2 := r.Get("latency").AsFloat()
		if ok1 && ok2 {
			all = append(all, obs{rate, lat})
		}
	}
	if len(all) == 0 {
		log.Fatal("no joined observations")
	}
	sort.Slice(all, func(i, j int) bool { return all[i].rate < all[j].rate })
	quart := len(all) / 4
	meanLat := func(os []obs) float64 {
		var s float64
		for _, o := range os {
			s += o.latency
		}
		return s / float64(len(os))
	}
	lowQ := all[:quart]
	highQ := all[len(all)-quart:]
	fmt.Printf("instruction latency vs filesystem utilization:\n")
	fmt.Printf("  quietest quartile of FS write rates: mean latency %6.2f µs\n", meanLat(lowQ))
	fmt.Printf("  busiest  quartile of FS write rates: mean latency %6.2f µs\n", meanLat(highQ))
	ratio := meanLat(highQ) / meanLat(lowQ)
	fmt.Printf("  slowdown under filesystem contention: %.1fx\n\n", ratio)
	if ratio > 1.5 {
		fmt.Println("conclusion: instruction performance IS affected by parallel-filesystem")
		fmt.Println("utilization — the correlation the paper's §1 example asks for.")
	} else {
		fmt.Println("conclusion: no meaningful correlation detected.")
	}
}
