// Appnetwork implements the extension the paper's conclusion targets next:
// relating application behaviour to network utilization. It simulates
// per-link transmit counters, asks ScrubJay for application names (jobs)
// and information rates (network links), and reports which applications
// stress the interconnect — without writing a single join by hand.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"

	"scrubjay/internal/engine"
	"scrubjay/internal/facility"
	"scrubjay/internal/pipeline"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/workload"
)

func main() {
	racks := flag.Int("racks", 4, "racks")
	perRack := flag.Int("nodes-per-rack", 8, "nodes per rack")
	duration := flag.Int64("duration", 2400, "session duration in seconds")
	flag.Parse()

	ctx := rdd.NewContext(0)
	dict := semantics.DefaultDictionary()
	f := facility.New(facility.Config{Racks: *racks, NodesPerRack: *perRack, Seed: 5})
	sched := workload.DAT1(f, (*racks)/2, *duration)

	nodes := f.Nodes()
	cat := pipeline.Catalog{
		"job_queue_log":    sched.JobQueueLog(ctx, 8),
		"link_layout":      workload.LinkLayout(ctx, nodes, 4),
		"network_counters": workload.SimulateNetwork(ctx, sched, nodes, 0, *duration, workload.DefaultNetworkConfig(), 8),
	}
	schemas := map[string]semantics.Schema{
		"job_queue_log":    workload.JobQueueSchema(),
		"link_layout":      workload.LinkLayoutSchema(),
		"network_counters": workload.NetworkSchema(),
	}

	q := engine.Query{
		Domains: []string{"job", "network_link"},
		Values: []engine.QueryValue{
			{Dimension: "application"},
			{Dimension: "information/time_duration"},
		},
	}
	e := engine.New(dict, schemas, engine.DefaultOptions())
	plan, err := e.Solve(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n\nderivation sequence:\n%s\n", q, plan)

	result, err := pipeline.Execute(context.Background(), ctx, plan, cat, dict, pipeline.ExecOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rows := result.Collect()
	fmt.Printf("derived dataset: %d rows relating jobs to link traffic\n\n", len(rows))

	// Mean per-link transmit rate by application.
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, r := range rows {
		app := r.Get("job_name").StrVal()
		if v, ok := r.Get("tx_bytes_rate").AsFloat(); ok {
			sums[app] += v
			counts[app]++
		}
	}
	apps := make([]string, 0, len(sums))
	for a := range sums {
		apps = append(apps, a)
	}
	sort.Slice(apps, func(i, j int) bool {
		return sums[apps[i]]/float64(counts[apps[i]]) > sums[apps[j]]/float64(counts[apps[j]])
	})
	fmt.Println("mean uplink transmit rate by application:")
	for _, a := range apps {
		fmt.Printf("  %-10s %12.3g bytes/s over %d samples\n", a, sums[a]/float64(counts[a]), counts[a])
	}
	if len(apps) > 0 {
		fmt.Printf("\nheaviest communicator: %s\n", apps[0])
	}
}
