// Cputhrottle reproduces the paper's second case study (§7.3): how does CPU
// frequency throttling differ between a memory-intensive workload (mg.C)
// and a compute-intensive one (prime95), and what does it do to node power
// and thermal margins? It simulates the instrumented nodes, queries
// ScrubJay for active CPU frequency plus CPU and node counter rates, and
// prints the per-run series of the paper's Figure 6.
package main

import (
	"flag"
	"fmt"
	"log"

	"scrubjay/internal/bench"
)

func main() {
	nodes := flag.Int("nodes", 2, "instrumented nodes")
	runSec := flag.Int64("run", 300, "seconds per application run")
	gapSec := flag.Int64("gap", 60, "idle seconds between runs")
	flag.Parse()

	cfg := bench.DefaultCaseStudyConfig()
	cfg.Racks = 2
	cfg.NodesPerRack = 8
	cfg.AMGRack = 0
	cfg.DAT2Nodes = *nodes
	cfg.DAT2RunSec = *runSec
	cfg.DAT2GapSec = *gapSec

	res, err := bench.RunFig6(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derivation sequence found by the engine:\n%s\n", res.Plan)
	fmt.Printf("derived dataset: %d rows\n\n", res.JoinedRows)

	fmt.Println("per-run means (1-3 mg.C, 4-6 prime95):")
	metrics := bench.Fig6MetricColumns()
	fmt.Printf("%-14s", "run")
	for _, m := range metrics {
		fmt.Printf(" %18s", m)
	}
	fmt.Println()
	for _, r := range res.Runs {
		fmt.Printf("%-14s", r)
		for _, m := range metrics {
			fmt.Printf(" %18.4g", res.PerRunMeans[r][m])
		}
		fmt.Println()
	}

	fmt.Println("\nsignal shapes over the session (like Figure 6):")
	for _, m := range metrics {
		s := res.Series[m]
		fmt.Printf("  %-20s %s\n", m, s.Sparkline(64))
	}
	fmt.Println("\nreading the shapes: mg.C holds full frequency with heavy memory")
	fmt.Println("traffic; prime95 issues instructions fast and throttles hard.")
}
