// Streaming demonstrates the continuous-collection path of the paper's
// deployment (§2, §7.1): LDMS-style samplers stream node metrics into the
// embedded NoSQL store while the system runs; analysts then query the live
// tables through ScrubJay exactly like any other wrapped data source.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync"

	"scrubjay/internal/engine"
	"scrubjay/internal/facility"
	"scrubjay/internal/ingest"
	"scrubjay/internal/kvstore"
	"scrubjay/internal/pipeline"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
	"scrubjay/internal/workload"
	"scrubjay/internal/wrappers"
)

func main() {
	dir, err := os.MkdirTemp("", "scrubjay-stream")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	store, err := kvstore.Open(dir)
	if err != nil {
		log.Fatal(err)
	}

	// A small facility running one AMG job; three concurrent "samplers"
	// stream per-node temperature-proxy metrics into the store.
	f := facility.New(facility.Config{Racks: 2, NodesPerRack: 6, Seed: 9})
	sched := workload.NewSchedule(f, []workload.Job{{
		ID: "j1", App: workload.AMG, Nodes: f.RackNodes(0), StartSec: 0, EndSec: 1800,
	}})
	power := sched.PowerFunc()

	metricSchema := semantics.NewSchema(
		"time", semantics.TimeDomain(),
		"node", semantics.IDDomain("compute_node"),
		"node_power", semantics.ValueEntry("power", "watts"),
	)
	ing, err := ingest.Open(store, "ldms_node_power", metricSchema, ingest.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	nodes := f.Nodes()
	perSampler := (len(nodes) + 2) / 3
	for s := 0; s < 3; s++ {
		lo := s * perSampler
		hi := lo + perSampler
		if hi > len(nodes) {
			hi = len(nodes)
		}
		wg.Add(1)
		go func(mine []string) {
			defer wg.Done()
			for t := int64(0); t < 1800; t += 10 {
				for _, n := range mine {
					err := ing.Ingest(value.NewRow(
						"time", value.TimeNanos(t*1e9),
						"node", value.Str(n),
						"node_power", value.Float(power(n, t)),
					))
					if err != nil {
						log.Fatal(err)
					}
				}
			}
		}(nodes[lo:hi])
	}
	wg.Wait()
	if err := ing.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d records into table ldms_node_power\n", ing.Ingested())

	// The static layout table lives in the same store.
	ctx := rdd.NewContext(0)
	if err := wrappers.Write(f.LayoutDataset(ctx, 2),
		wrappers.Source{Format: "kv", Path: dir, Table: "node_layout"}); err != nil {
		log.Fatal(err)
	}
	store.Close()

	// An analyst, later: load the store and ask for power by rack.
	dict := semantics.DefaultDictionary()
	metrics, err := wrappers.Read(ctx, wrappers.Source{Format: "kv", Path: dir, Table: "ldms_node_power"})
	if err != nil {
		log.Fatal(err)
	}
	layout, err := wrappers.Read(ctx, wrappers.Source{Format: "kv", Path: dir, Table: "node_layout"})
	if err != nil {
		log.Fatal(err)
	}
	e := engine.New(dict, map[string]semantics.Schema{
		"ldms_node_power": metrics.Schema(),
		"node_layout":     layout.Schema(),
	}, engine.DefaultOptions())
	plan, err := e.Solve(context.Background(), engine.Query{
		Domains: []string{"rack"},
		Values:  []engine.QueryValue{{Dimension: "power", Units: "kilowatts"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nderivation sequence:\n%s\n", plan)
	result, err := pipeline.Execute(context.Background(), ctx, plan, pipeline.Catalog{
		"ldms_node_power": metrics,
		"node_layout":     layout,
	}, dict, pipeline.ExecOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Aggregate mean power per rack with the interoperability layer.
	rows := result.Collect()
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, r := range rows {
		rack := r.Get("rack").StrVal()
		if v, ok := r.Get("node_power").AsFloat(); ok {
			sums[rack] += v
			counts[rack]++
		}
	}
	fmt.Printf("derived %d rows; mean node power by rack:\n", len(rows))
	for _, rack := range []string{"rack00", "rack01"} {
		if counts[rack] > 0 {
			fmt.Printf("  %s  %.3f kW\n", rack, sums[rack]/float64(counts[rack]))
		}
	}
	fmt.Println("\nrack00 ran AMG; rack01 idled — the live-streamed data shows it.")
}
