// Quickstart: annotate two small heterogeneous datasets, ask ScrubJay a
// dimension-level question, and let the derivation engine figure out how to
// relate them — no join conditions, no column names in the query.
package main

import (
	"context"
	"fmt"
	"log"

	"scrubjay/internal/dataset"
	"scrubjay/internal/engine"
	"scrubjay/internal/pipeline"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

func main() {
	ctx := rdd.NewContext(0)
	dict := semantics.DefaultDictionary()

	// Dataset 1: node temperatures, column named "node_id".
	tempSchema := semantics.NewSchema(
		"node_id", semantics.IDDomain("compute_node"),
		"timestamp", semantics.TimeDomain(),
		"node_temp", semantics.ValueEntry("temperature", "degrees_celsius"),
	)
	temps := dataset.FromRows(ctx, "node_temps", []value.Row{
		value.NewRow("node_id", value.Str("cab01"), "timestamp", value.TimeNanos(0), "node_temp", value.Float(61.5)),
		value.NewRow("node_id", value.Str("cab02"), "timestamp", value.TimeNanos(0), "node_temp", value.Float(74.0)),
		value.NewRow("node_id", value.Str("cab01"), "timestamp", value.TimeNanos(120e9), "node_temp", value.Float(63.1)),
		value.NewRow("node_id", value.Str("cab02"), "timestamp", value.TimeNanos(120e9), "node_temp", value.Float(75.8)),
	}, tempSchema, 2)

	// Dataset 2: rack layout, column named "NODEID" — a different name for
	// the same domain. ScrubJay matches them by semantics, not by name.
	layoutSchema := semantics.NewSchema(
		"NODEID", semantics.IDDomain("compute_node"),
		"rack", semantics.IDDomain("rack"),
	)
	layout := dataset.FromRows(ctx, "layout", []value.Row{
		value.NewRow("NODEID", value.Str("cab01"), "rack", value.Str("rack0")),
		value.NewRow("NODEID", value.Str("cab02"), "rack", value.Str("rack1")),
	}, layoutSchema, 1)

	// Validate both datasets against the semantic dictionary.
	for _, ds := range []*dataset.Dataset{temps, layout} {
		if err := ds.Validate(dict); err != nil {
			log.Fatal(err)
		}
	}

	// The query: temperatures (in Fahrenheit!) for racks. No mention of
	// files, tables, columns, or join keys.
	q := engine.Query{
		Domains: []string{"rack"},
		Values:  []engine.QueryValue{{Dimension: "temperature", Units: "degrees_fahrenheit"}},
	}
	e := engine.New(dict, map[string]semantics.Schema{
		"node_temps": tempSchema,
		"layout":     layoutSchema,
	}, engine.DefaultOptions())
	plan, err := e.Solve(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n\nderivation sequence:\n%s\n", q, plan)

	result, err := pipeline.Execute(context.Background(), ctx, plan,
		pipeline.Catalog{"node_temps": temps, "layout": layout}, dict, pipeline.ExecOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(result.Show(10))
}
