#!/usr/bin/env sh
# ci.sh — the tier-1+ verification gate for this repository.
#
# Tier 1 (ROADMAP.md) is build + tests. This gate extends it with the
# checks that protect the paper's §5.3/§5.4 guarantees:
#   * go vet           — stock static analysis
#   * go test -race    — the dynamic half of the purity/lock story: every
#                        test runs under the race detector, module-wide
#   * sjvet            — ScrubJay-specific invariants (purity, determinism,
#                        lockdiscipline, unitsafety; see DESIGN.md
#                        "Enforced invariants"), over library code AND tests
#
# Any nonzero exit fails the gate.
set -eu

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> sjvet ./..."
go run ./cmd/sjvet ./...

echo "==> sjvet -tests ./..."
go run ./cmd/sjvet -tests ./...

echo "ci.sh: all gates passed"
