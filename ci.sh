#!/usr/bin/env sh
# ci.sh — the tier-1+ verification gate for this repository.
#
# Tier 1 (ROADMAP.md) is build + tests. This gate extends it with the
# checks that protect the paper's §5.3/§5.4 guarantees:
#   * go vet           — stock static analysis
#   * go test -race    — the dynamic half of the purity/lock story: every
#                        test runs under the race detector, module-wide
#   * gofmt            — formatting gate (testdata fixtures excluded: the
#                        loader-edge fixture deliberately contains a
#                        vendored file that is not valid Go)
#   * sjvet            — ScrubJay-specific invariants (purity, determinism,
#                        lockdiscipline, unitsafety, frameimmut, ctxflow,
#                        goroleak, the hot-path allocation discipline pair
#                        hotalloc/retain, and the flow-sensitive trio
#                        errflow/leakcheck/lockorder; see DESIGN.md
#                        "Enforced invariants"), over library code AND
#                        tests, with a reviewed baseline (sjvet.baseline),
#                        a SARIF artifact (sjvet.sarif) for code-scanning
#                        upload, and a per-analyzer timing/finding-count
#                        trend artifact (sjvet_timing.json)
#   * sjbench gates    — columnar >= row throughput (BENCH_columnar.json),
#                        the disabled-tracing overhead budget
#                        (BENCH_obs.json, nil-span invariant), and the
#                        distributed-shuffle bit-for-bit gate
#                        (BENCH_shuffle.json, local vs 2-worker Fig-5)
#   * smoke            — sjserved + sjload end to end: correctness burst,
#                        admission control, graceful drain, then the
#                        observability surface (traced query artifact,
#                        GET /v1/trace/{id}, /metrics, pprof isolation),
#                        then the distributed smoke: 2 sjworker processes,
#                        a driver query whose shuffles cross TCP must match
#                        the local run byte-for-byte, including with one
#                        worker SIGKILLed mid-query at an exchange barrier,
#                        and a traced run must graft worker-origin spans
#                        into one coherent cross-process trace
#   * provenance       — each sjbench gate appends its report to the
#                        BENCH_history.jsonl ledger; the run adds one "ci"
#                        record (sjvet timing + distributed trace summary)
#                        and bench-log -check fails on any invalid record
#
# Any nonzero exit fails the gate.
set -eu

echo "==> gofmt (excluding testdata)"
UNFORMATTED=$(find . -name '*.go' -not -path '*/testdata/*' -not -path './.git/*' | xargs gofmt -l)
if [ -n "$UNFORMATTED" ]; then
  echo "ci.sh: gofmt needed on:" >&2
  echo "$UNFORMATTED" >&2
  exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

# sjvet runs against the reviewed baseline (fresh findings fail; stale
# baseline entries also fail, so the baseline can only shrink alongside a
# source fix) and emits sjvet.sarif for the code-scanning artifact upload.
# -timing prints the per-analyzer wall-clock breakdown, so a cost
# regression in the interprocedural/hot-path build stages is attributable
# before it blows the budget; -timing-json lands the same rows plus raw
# finding counts in sjvet_timing.json, the run-over-run trend artifact.
# Wall-clock budget: the whole pass must stay fast enough to sit in every
# CI run, so anything over 30s fails the gate.
echo "==> sjvet -timing -timing-json sjvet_timing.json -sarif sjvet.sarif -baseline sjvet.baseline ./..."
SJVET_T0=$(date +%s)
go run ./cmd/sjvet -timing -timing-json sjvet_timing.json -sarif sjvet.sarif -baseline sjvet.baseline ./...

# The -tests pass shares the baseline: hotalloc/retain skip _test.go files,
# so the grandfathered library findings are the same set.
echo "==> sjvet -tests -baseline sjvet.baseline ./..."
go run ./cmd/sjvet -tests -baseline sjvet.baseline ./...
SJVET_T1=$(date +%s)
SJVET_ELAPSED=$((SJVET_T1 - SJVET_T0))
echo "    sjvet wall-clock: ${SJVET_ELAPSED}s (budget 30s)"
if [ "$SJVET_ELAPSED" -gt 30 ]; then
  echo "ci.sh: sjvet exceeded its 30s wall-clock budget (${SJVET_ELAPSED}s)" >&2
  exit 1
fi
if [ -n "${CI_ARTIFACT_DIR:-}" ]; then
  cp sjvet.sarif "$CI_ARTIFACT_DIR/sjvet.sarif"
  cp sjvet_timing.json "$CI_ARTIFACT_DIR/sjvet_timing.json"
  echo "    uploaded sjvet.sarif and sjvet_timing.json to $CI_ARTIFACT_DIR"
fi

# Columnar regression gate: the vectorized join kernels must not be slower
# than the row-at-a-time reference path (sjbench exits nonzero if they
# are), and the measured run lands in BENCH_columnar.json so the tracked
# numbers stay honest. Small row count: this is a floor check, not the
# reference measurement (see EXPERIMENTS.md for one).
echo "==> sjbench columnar (row-vs-columnar gate)"
go run ./cmd/sjbench -exp columnar -rows 30000 -out BENCH_columnar.json -history BENCH_history.jsonl

# Observability regression gate: with tracing disabled the rdd hot path is
# nil-pointer checks only, so it must stay within 3% of the always-
# collecting baseline (sjbench exits nonzero past the budget) — the
# performance half of the nil-span invariant (DESIGN.md). The same run
# gates the distributed leg: Fig-5 over a live 2-worker cluster with
# fleet-wide tracing on vs off, same 3% budget. The obs package itself
# must also be sjvet-clean on its own.
echo "==> sjbench obs (disabled-tracing + distributed-tracing overhead gates)"
go run ./cmd/sjbench -exp obs -rows 30000 -out BENCH_obs.json -history BENCH_history.jsonl

# Distributed-shuffle gate: the Fig-5 query through an in-process 2-worker
# cluster (real TCP loopback exchanges) must produce byte-identical rows to
# the local run (sjbench exits nonzero otherwise) — the bit-for-bit half of
# the scheduler's determinism contract (DESIGN.md "Distributed execution").
echo "==> sjbench shuffle (local vs distributed bit-for-bit gate)"
go run ./cmd/sjbench -exp shuffle -out BENCH_shuffle.json -history BENCH_history.jsonl

# Cost-based planning gate: the chain workload's statistics must flip the
# join order to the provably cheaper plan with an identical row multiset
# and no wall-clock regression, and the Fig-5 workload's warm plan must
# cost no more than the heuristic's (sjbench exits nonzero otherwise) —
# the planner half of the statistics-store contract (DESIGN.md).
echo "==> sjbench plan (cold vs warm cost-based planning gate)"
go run ./cmd/sjbench -exp plan -out BENCH_plan.json -history BENCH_history.jsonl
echo "==> sjvet ./internal/obs"
go run ./cmd/sjvet -baseline sjvet.baseline ./internal/obs

# Server smoke: boot sjserved on a random port over a generated catalog,
# then prove the three serving guarantees end to end:
#   1. correctness + plan cache: a concurrent sjload burst completes with
#      zero drops, and a plan-only burst shows cold search vs cached hits;
#   2. admission control: an oversized burst against a 1-slot/no-queue
#      server is shed with 429s (sjload -expect-rejections);
#   3. graceful shutdown: SIGTERM while a burst is in flight — the daemon
#      must exit 0 with every accepted stream finished (sjload exits 1 on
#      any dropped in-flight query).
echo "==> server smoke (sjserved + sjload)"
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
go build -o "$SMOKE" ./cmd/sjserved ./cmd/sjload ./cmd/sjgen ./cmd/scrubjay ./cmd/sjworker
"$SMOKE/sjgen" -out "$SMOKE/cat" -dat 1 -format jsonl \
  -racks 4 -nodes-per-rack 6 -amg-rack 2 -duration 1200 -seed 1 >/dev/null

wait_addr() {
  i=0
  while [ ! -f "$1" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "ci.sh: sjserved never wrote $1" >&2; exit 1; }
    sleep 0.1
  done
  cat "$1"
}

QUERY_ARGS="-domains job,rack -values application,temperature_difference"

echo "  -> correctness burst + plan-cache demonstration"
"$SMOKE/sjserved" -catalog "$SMOKE/cat" -addr 127.0.0.1:0 \
  -addr-file "$SMOKE/addr1" -cache "$SMOKE/cache" \
  -max-concurrent 2 -max-queue 32 2>"$SMOKE/served1.log" &
SRV=$!
ADDR=$(wait_addr "$SMOKE/addr1")
# Plan-only burst first, against a cold plan cache: request 0 pays the CSP
# search, requests 1..5 hit the cache — the driver's "plan search:" line is
# the cold-vs-warm comparison. Then the mixed concurrent burst.
"$SMOKE/sjload" -server "http://$ADDR" -clients 1 -requests 6 -plan-every 1 $QUERY_ARGS
"$SMOKE/sjload" -server "http://$ADDR" -clients 4 -requests 6 $QUERY_ARGS \
  -out BENCH_serve.json
kill -TERM "$SRV"
wait "$SRV"

echo "  -> overload burst must be shed with 429/503"
rm -f "$SMOKE/addr2"
"$SMOKE/sjserved" -catalog "$SMOKE/cat" -addr 127.0.0.1:0 \
  -addr-file "$SMOKE/addr2" -max-concurrent 1 -max-queue -1 \
  2>"$SMOKE/served2.log" &
SRV=$!
ADDR=$(wait_addr "$SMOKE/addr2")
"$SMOKE/sjload" -server "http://$ADDR" -clients 16 -requests 3 \
  -plan-every 0 -expect-rejections $QUERY_ARGS
kill -TERM "$SRV"
wait "$SRV"

echo "  -> graceful shutdown under load: zero dropped in-flight queries"
rm -f "$SMOKE/addr3"
"$SMOKE/sjserved" -catalog "$SMOKE/cat" -addr 127.0.0.1:0 \
  -addr-file "$SMOKE/addr3" -max-concurrent 2 -max-queue 64 \
  2>"$SMOKE/served3.log" &
SRV=$!
ADDR=$(wait_addr "$SMOKE/addr3")
"$SMOKE/sjload" -server "http://$ADDR" -clients 6 -requests 60 \
  -plan-every 0 $QUERY_ARGS >"$SMOKE/shutdown-load.log" 2>&1 &
LOAD=$!
sleep 1
kill -TERM "$SRV"
wait "$SRV" || { echo "ci.sh: sjserved did not drain cleanly" >&2; cat "$SMOKE/served3.log" >&2; exit 1; }
wait "$LOAD" || { echo "ci.sh: sjload saw dropped queries" >&2; cat "$SMOKE/shutdown-load.log" >&2; exit 1; }
grep -E "^(completed|dropped):" "$SMOKE/shutdown-load.log" | sed 's/^/     /'

# Observability smoke: the full trace story end to end.
#   1. local: a traced query writes a JSON artifact that validates
#      (scrubjay trace -check) and renders as a timeline;
#   2. served: a query's X-Scrubjay-Trace id resolves via GET /v1/trace/{id}
#      and renders through the same CLI;
#   3. /metrics re-renders from the obs registry (spot-check keys);
#   4. the pprof surface answers on its own -debug-addr listener only.
echo "  -> observability: traced local query + artifact check"
"$SMOKE/scrubjay" query -catalog "$SMOKE/cat" \
  -domains job,rack -values application,temperature_difference \
  -trace "$SMOKE/local.trace.json" >/dev/null
"$SMOKE/scrubjay" trace -check "$SMOKE/local.trace.json"
"$SMOKE/scrubjay" trace "$SMOKE/local.trace.json" | head -5 | sed 's/^/     /'

echo "  -> observability: served trace, /metrics, pprof"
rm -f "$SMOKE/addr4" "$SMOKE/debug4"
"$SMOKE/sjserved" -catalog "$SMOKE/cat" -addr 127.0.0.1:0 \
  -addr-file "$SMOKE/addr4" -debug-addr 127.0.0.1:0 \
  -debug-addr-file "$SMOKE/debug4" 2>"$SMOKE/served4.log" &
SRV=$!
ADDR=$(wait_addr "$SMOKE/addr4")
DEBUG_ADDR=$(wait_addr "$SMOKE/debug4")
"$SMOKE/sjload" -server "http://$ADDR" -clients 1 -requests 2 -plan-every 0 \
  $QUERY_ARGS >/dev/null
TRACE_ID=$(curl -sf "http://$ADDR/v1/trace" | tr ',"' '\n\n' | grep '^t[0-9a-f]*$' | head -1)
[ -n "$TRACE_ID" ] || { echo "ci.sh: server listed no traces" >&2; exit 1; }
"$SMOKE/scrubjay" trace "$TRACE_ID" -server "http://$ADDR" | head -5 | sed 's/^/     /'
curl -sf "http://$ADDR/metrics" | grep -q '^latency_p99_micros=' \
  || { echo "ci.sh: /metrics missing latency quantiles" >&2; exit 1; }
curl -sf "http://$ADDR/metrics" | grep -q '^queries_total=' \
  || { echo "ci.sh: /metrics missing counters" >&2; exit 1; }
curl -sf "http://$DEBUG_ADDR/debug/pprof/" >/dev/null \
  || { echo "ci.sh: pprof index unreachable on debug listener" >&2; exit 1; }
if curl -sf "http://$ADDR/debug/pprof/" >/dev/null 2>&1; then
  echo "ci.sh: pprof leaked onto the query port" >&2; exit 1
fi
kill -TERM "$SRV"
wait "$SRV"

# Distributed smoke: real sjworker processes. The same query runs three
# ways — local, through the 2-worker cluster, and through the cluster with
# worker 2 SIGKILLed mid-query (the driver's fault hook fires at the first
# exchange's push/fetch barrier, so map outputs are already on the dead
# worker and the fetch must discover the death, re-push to the survivor,
# and retry). All three CSVs must be byte-identical.
echo "  -> distributed shuffle: 2 sjworkers, bit-for-bit vs local, mid-query worker kill"
"$SMOKE/scrubjay" query -catalog "$SMOKE/cat" $QUERY_ARGS \
  -out "csv:$SMOKE/fig5-local.csv" >/dev/null
"$SMOKE/sjworker" -addr 127.0.0.1:0 -addr-file "$SMOKE/w1.addr" 2>"$SMOKE/w1.log" &
W1=$!
"$SMOKE/sjworker" -addr 127.0.0.1:0 -addr-file "$SMOKE/w2.addr" 2>"$SMOKE/w2.log" &
W2=$!
W1ADDR=$(wait_addr "$SMOKE/w1.addr")
W2ADDR=$(wait_addr "$SMOKE/w2.addr")
"$SMOKE/scrubjay" query -catalog "$SMOKE/cat" $QUERY_ARGS \
  -shuffle-workers "$W1ADDR,$W2ADDR" -out "csv:$SMOKE/fig5-dist.csv" >/dev/null
cmp "$SMOKE/fig5-local.csv" "$SMOKE/fig5-dist.csv" \
  || { echo "ci.sh: distributed result differs from local" >&2; exit 1; }

# Distributed tracing smoke: the same query traced — the artifact must
# contain worker-origin spans grafted from both live workers, and the
# timeline must render their origin columns and per-worker rollups.
echo "  -> distributed tracing: worker-origin spans in one coherent trace"
"$SMOKE/scrubjay" query -catalog "$SMOKE/cat" $QUERY_ARGS \
  -shuffle-workers "$W1ADDR,$W2ADDR" -trace "$SMOKE/dist.trace.json" >/dev/null
"$SMOKE/scrubjay" trace -check "$SMOKE/dist.trace.json"
"$SMOKE/scrubjay" trace "$SMOKE/dist.trace.json" | grep -q 'origin=worker@' \
  || { echo "ci.sh: distributed trace has no worker-origin spans" >&2; exit 1; }
"$SMOKE/scrubjay" trace "$SMOKE/dist.trace.json" | grep -q '↳ worker@' \
  || { echo "ci.sh: distributed trace has no per-worker rollups" >&2; exit 1; }
SCRUBJAY_FAULT_KILL_PID=$W2 "$SMOKE/scrubjay" query -catalog "$SMOKE/cat" $QUERY_ARGS \
  -shuffle-workers "$W1ADDR,$W2ADDR" -out "csv:$SMOKE/fig5-killed.csv" >/dev/null
if kill -0 "$W2" 2>/dev/null; then
  echo "ci.sh: fault injection never fired (worker 2 still alive)" >&2; exit 1
fi
cmp "$SMOKE/fig5-local.csv" "$SMOKE/fig5-killed.csv" \
  || { echo "ci.sh: result after mid-query worker death differs from local" >&2; exit 1; }
kill "$W1" 2>/dev/null || true
wait "$W1" 2>/dev/null || true
wait "$W2" 2>/dev/null || true

# Provenance ledger: the sjbench gates above each appended an "sjbench"
# record to BENCH_history.jsonl; this run adds one "ci" record tying the
# commit to its sjvet timing and the distributed trace summary, then the
# whole ledger is re-validated — a schema-invalid record fails the gate.
echo "==> provenance ledger (BENCH_history.jsonl)"
"$SMOKE/scrubjay" bench-log -append -kind ci -note "ci.sh gate run" \
  -vet-timing sjvet_timing.json -trace "$SMOKE/dist.trace.json" \
  -ledger BENCH_history.jsonl
"$SMOKE/scrubjay" bench-log -check -ledger BENCH_history.jsonl

echo "ci.sh: all gates passed"
