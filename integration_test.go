package scrubjay_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"scrubjay/internal/analysis"
	"scrubjay/internal/bench"
	"scrubjay/internal/cache"
	"scrubjay/internal/derive"
	"scrubjay/internal/engine"
	"scrubjay/internal/facility"
	"scrubjay/internal/ingest"
	"scrubjay/internal/kvstore"
	"scrubjay/internal/obs"
	"scrubjay/internal/pipeline"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
	"scrubjay/internal/workload"
	"scrubjay/internal/wrappers"
)

// TestFullDeploymentRoundTrip exercises the complete deployment the paper
// describes, end to end: monitoring producers stream into the NoSQL store
// (§2), datasets load through wrappers with shared semantics (§4), the
// derivation engine answers a dimension query (§5), the pipeline executes
// with the result cache (§5.4), results unwrap to CSV for external tools,
// and the stored derivation sequence replays identically in a "different
// session".
func TestFullDeploymentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	ctx := rdd.NewContext(2)
	dict := semantics.DefaultDictionary()

	// --- Continuous collection into the store. ---
	f := facility.New(facility.Config{Racks: 3, NodesPerRack: 6, Seed: 11})
	sched := workload.DAT1(f, 1, 3600)
	store, err := kvstore.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	tempsSchema := facility.TemperatureSchema()
	ing, err := ingest.Open(store, "rack_temperatures", tempsSchema, ingest.Config{BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	liveTemps := f.SimulateTemperatures(ctx, sched.PowerFunc(), 0, 3600, facility.DefaultThermalConfig(), 2)
	for _, r := range liveTemps.Collect() {
		if err := ing.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	// Static tables land in the same store via the unwrapper.
	if err := wrappers.Write(f.LayoutDataset(ctx, 2), wrappers.Source{Format: "kv", Path: storeDir, Table: "node_layout"}); err != nil {
		t.Fatal(err)
	}
	if err := wrappers.Write(sched.JobQueueLog(ctx, 2), wrappers.Source{Format: "kv", Path: storeDir, Table: "job_queue_log"}); err != nil {
		t.Fatal(err)
	}
	store.Close()

	// --- Load the catalog back through the wrappers. ---
	cat := pipeline.Catalog{}
	schemas := map[string]semantics.Schema{}
	for _, table := range []string{"rack_temperatures", "node_layout", "job_queue_log"} {
		ds, err := wrappers.Read(ctx, wrappers.Source{Format: "kv", Path: storeDir, Table: table, Name: table})
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.Validate(dict); err != nil {
			t.Fatalf("%s: %v", table, err)
		}
		cat[table] = ds
		schemas[table] = ds.Schema()
	}

	// --- Solve the §7.2 query and execute with the cache. ---
	e := engine.New(dict, schemas, engine.DefaultOptions())
	plan, trace, err := e.SolveTraced(context.Background(), bench.Fig5Query())
	if err != nil {
		t.Fatalf("%v\ntrace:\n%s", err, trace)
	}
	c, err := cache.Open(filepath.Join(dir, "cache"), 0)
	if err != nil {
		t.Fatal(err)
	}
	result, err := pipeline.Execute(context.Background(), ctx, plan, cat, dict, pipeline.ExecOptions{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if result.Count() == 0 {
		t.Fatal("empty result")
	}
	if c.Len() == 0 {
		t.Error("cache should hold intermediate results")
	}

	// --- Distributed analysis: once AMG's ramp completes (t >= 2400 s),
	// it is the hottest application. The time filter comes from the
	// relational interoperability layer, as a pipeline step would.
	late, err := (&derive.FilterRows{
		Column: "timespan_exploded", Op: ">=", Operand: "1970-01-01T00:40:00Z",
	}).Apply(result, dict)
	if err != nil {
		t.Fatal(err)
	}
	byApp, err := analysis.GroupedMeans(late, "job_name", "heat")
	if err != nil {
		t.Fatal(err)
	}
	for app, mean := range byApp {
		if app != "AMG" && mean >= byApp["AMG"] {
			t.Errorf("application %s mean heat %v should be below AMG's %v (all: %v)",
				app, mean, byApp["AMG"], byApp)
		}
	}

	// --- Unwrap to CSV for external tools; read it back losslessly. ---
	csvPath := filepath.Join(dir, "result.csv")
	if err := wrappers.Write(result, wrappers.Source{Format: "csv", Path: csvPath}); err != nil {
		t.Fatal(err)
	}
	back, err := wrappers.Read(ctx, wrappers.Source{Format: "csv", Path: csvPath})
	if err != nil {
		t.Fatal(err)
	}
	if back.Count() != result.Count() {
		t.Errorf("CSV round trip lost rows: %d vs %d", back.Count(), result.Count())
	}

	// --- Store the plan; replay it in a fresh "session" from the cache. ---
	planPath := filepath.Join(dir, "plan.json")
	data, err := plan.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(planPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	stored, err := os.ReadFile(planPath)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := pipeline.Decode(stored)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Hash() != plan.Hash() {
		t.Error("plan hash changed across storage")
	}
	ctx2 := rdd.NewContext(2)
	c2, err := cache.Open(filepath.Join(dir, "cache"), 0)
	if err != nil {
		t.Fatal(err)
	}
	result2, err := pipeline.Execute(context.Background(), ctx2, replay, cat, dict, pipeline.ExecOptions{Cache: c2})
	if err != nil {
		t.Fatal(err)
	}
	cols := result.Schema().Columns()
	a := result.SortedBy(cols...)
	b := result2.SortedBy(cols...)
	if len(a) != len(b) {
		t.Fatalf("replay row count %d != %d", len(b), len(a))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("replayed row %d differs:\n%v\n%v", i, a[i], b[i])
		}
	}
}

// TestDeterministicTraceArtifact: with an injected frozen clock, tracing
// the full Fig-5 query (search + pipeline execution) yields byte-identical
// JSON artifacts across runs — at one partition and at three. This is the
// reproducibility half of the observability story: everything in the
// artifact except time comes from the deterministic execution itself, and
// time is injected.
func TestDeterministicTraceArtifact(t *testing.T) {
	runOnce := func(parts int) []byte {
		ctx := rdd.NewContext(2)
		dict := semantics.DefaultDictionary()
		f := facility.New(facility.Config{Racks: 3, NodesPerRack: 4, Seed: 7})
		sched := workload.DAT1(f, 1, 1200)
		cat := pipeline.Catalog{
			"rack_temperatures": f.SimulateTemperatures(ctx, sched.PowerFunc(), 0, 1200, facility.DefaultThermalConfig(), parts),
			"node_layout":       f.LayoutDataset(ctx, parts),
			"job_queue_log":     sched.JobQueueLog(ctx, parts),
		}
		schemas := map[string]semantics.Schema{}
		for name, ds := range cat {
			schemas[name] = ds.Schema()
		}

		tr := obs.NewTracer("det", obs.FrozenClock())
		qspan := tr.Start(obs.KindQuery, "query")
		e := engine.New(dict, schemas, engine.DefaultOptions())
		search := qspan.Child(obs.KindSearch, "plan-search")
		plan, trace, err := e.SolveTraced(context.Background(), bench.Fig5Query())
		trace.AttachTo(search)
		search.End()
		if err != nil {
			t.Fatal(err)
		}
		exec := qspan.Child(obs.KindExec, "execute")
		ctx.SetSpan(exec)
		result, err := pipeline.Execute(context.Background(), ctx, plan, cat, dict, pipeline.ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		exec.SetInt(obs.AttrRowsOut, result.Count())
		exec.End()
		qspan.End()
		art := tr.Artifact()
		if err := art.Check(); err != nil {
			t.Fatalf("artifact invalid: %v", err)
		}
		data, err := art.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	for _, parts := range []int{1, 3} {
		first := runOnce(parts)
		second := runOnce(parts)
		if string(first) != string(second) {
			t.Errorf("trace artifact not deterministic at %d partitions:\n%s\nvs\n%s", parts, first, second)
		}
		// Round trip: the bytes decode into a valid artifact that re-encodes
		// to the same bytes.
		art, err := obs.DecodeArtifact(first)
		if err != nil {
			t.Fatal(err)
		}
		again, err := art.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(first) {
			t.Errorf("artifact did not round-trip at %d partitions", parts)
		}
	}
}

// TestPlanDeterminism: solving the same query twice, in fresh engines,
// yields byte-identical plans — a prerequisite for the reproducibility
// story and for cache-key stability.
func TestPlanDeterminism(t *testing.T) {
	mk := func() string {
		schemas := map[string]semantics.Schema{
			"job_queue_log":     workload.JobQueueSchema(),
			"node_layout":       facility.LayoutSchema(),
			"rack_temperatures": facility.TemperatureSchema(),
		}
		e := engine.New(semantics.DefaultDictionary(), schemas, engine.DefaultOptions())
		plan, err := e.Solve(context.Background(), bench.Fig5Query())
		if err != nil {
			t.Fatal(err)
		}
		data, err := plan.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	first := mk()
	for i := 0; i < 5; i++ {
		if got := mk(); got != first {
			t.Fatalf("plan differs on run %d:\n%s\nvs\n%s", i, got, first)
		}
	}
}

// TestHeterogeneousFormatsOneQuery: the same query runs over a catalog
// whose datasets live in three different storage formats — the wrappers
// abstraction the paper's Figure 2 shows.
func TestHeterogeneousFormatsOneQuery(t *testing.T) {
	dir := t.TempDir()
	ctx := rdd.NewContext(2)
	dict := semantics.DefaultDictionary()
	cfg := bench.DefaultCaseStudyConfig()
	cfg.Racks = 3
	cfg.NodesPerRack = 4
	cfg.AMGRack = 1
	cfg.DAT1DurationSec = 1200
	src, schemas, _ := bench.DAT1Catalog(ctx, cfg)

	// jobs -> CSV, layout -> kv, temps -> bin.
	jobsPath := filepath.Join(dir, "jobs.csv")
	tempsPath := filepath.Join(dir, "temps.bin")
	if err := wrappers.Write(src["job_queue_log"], wrappers.Source{Format: "csv", Path: jobsPath}); err != nil {
		t.Fatal(err)
	}
	if err := wrappers.Write(src["node_layout"], wrappers.Source{Format: "kv", Path: dir, Table: "layout"}); err != nil {
		t.Fatal(err)
	}
	if err := wrappers.Write(src["rack_temperatures"], wrappers.Source{Format: "bin", Path: tempsPath}); err != nil {
		t.Fatal(err)
	}

	cat := pipeline.Catalog{}
	for name, s := range map[string]wrappers.Source{
		"job_queue_log":     {Format: "csv", Path: jobsPath, Name: "job_queue_log"},
		"node_layout":       {Format: "kv", Path: dir, Table: "layout", Name: "node_layout"},
		"rack_temperatures": {Format: "bin", Path: tempsPath, Name: "rack_temperatures"},
	} {
		ds, err := wrappers.Read(ctx, s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cat[name] = ds
	}
	e := engine.New(dict, schemas, engine.DefaultOptions())
	plan, err := e.Solve(context.Background(), bench.Fig5Query())
	if err != nil {
		t.Fatal(err)
	}
	out, err := pipeline.Execute(context.Background(), ctx, plan, cat, dict, pipeline.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Count() == 0 {
		t.Fatal("heterogeneous-format query returned nothing")
	}
	for _, r := range out.Rows().Take(5) {
		if !r.Has("heat") || !r.Has("job_name") || r.Get("rack").Kind() != value.KindString {
			t.Errorf("malformed row: %v", r)
		}
	}
}
