module scrubjay

go 1.22
