// Command sjserved is ScrubJay's query-serving daemon: it loads a catalog
// directory once and serves derivation queries to many concurrent clients
// over HTTP (see internal/server for the API). Load is shed with
// 429/503 + Retry-After when the bounded executor and its wait queue fill,
// and SIGINT/SIGTERM triggers a graceful drain: the listener closes,
// every accepted query runs to completion, the result-cache index is
// flushed, and the process exits 0. A drain that cannot finish inside
// -drain-ms exits 1 — dropped in-flight queries are a reportable failure,
// not business as usual.
//
// Observability: every executed query is traced (fetch artifacts at
// GET /v1/trace/{id}; retention set by -trace-ring), and -debug-addr
// mounts the net/http/pprof profiling surface on its own listener, kept
// off the query port so profiling access can be firewalled separately.
//
//	sjserved -catalog DIR [-addr HOST:PORT] [-addr-file PATH]
//	         [-workers N] [-max-concurrent N] [-max-queue N]
//	         [-cache DIR] [-cache-bytes N] [-plan-cache N] [-stats FILE]
//	         [-window SEC] [-default-timeout-ms N] [-max-timeout-ms N]
//	         [-drain-ms N] [-trace-ring N]
//	         [-debug-addr HOST:PORT] [-debug-addr-file PATH]
//	         [-shuffle-workers ADDR,ADDR,...]
//
// With -shuffle-workers, every query's shuffle exchanges move through the
// listed sjworker shard processes (registration + heartbeat + retry via
// internal/cluster); results are bit-for-bit identical to in-process runs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"scrubjay/internal/cache"
	"scrubjay/internal/cluster"
	"scrubjay/internal/rdd"
	"scrubjay/internal/server"
	"scrubjay/internal/stats"
)

// options collects every flag so run stays testable without a flag set.
type options struct {
	addr           string
	addrFile       string
	catalogDir     string
	workers        int
	maxConcurrent  int
	maxQueue       int
	shuffleWorkers string
	cacheDir       string
	statsPath      string
	cacheBytes     int64
	planCacheSize  int
	window         float64
	columnar       bool
	traceRing      int
	debugAddr      string
	debugAddrFile  string
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	drainBudget    time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8372", "listen address (port 0 picks a free port)")
	flag.StringVar(&o.addrFile, "addr-file", "", "write the actual listen address to this file once serving")
	flag.StringVar(&o.catalogDir, "catalog", "", "catalog directory to serve (required)")
	flag.IntVar(&o.workers, "workers", 0, "rdd workers per request (0 = GOMAXPROCS)")
	flag.IntVar(&o.maxConcurrent, "max-concurrent", 4, "executor slots")
	flag.IntVar(&o.maxQueue, "max-queue", 64, "bounded wait queue (negative = none)")
	flag.StringVar(&o.shuffleWorkers, "shuffle-workers", "", "comma-separated sjworker exchange addresses; when set, shuffles run through the worker cluster")
	flag.StringVar(&o.cacheDir, "cache", "", "derivation-result cache directory (optional)")
	flag.StringVar(&o.statsPath, "stats", "", "statistics store file: enables cost-based planning, saved back on drain (optional)")
	flag.Int64Var(&o.cacheBytes, "cache-bytes", 256<<20, "result-cache budget in bytes")
	flag.IntVar(&o.planCacheSize, "plan-cache", 256, "plan-cache LRU capacity")
	flag.Float64Var(&o.window, "window", 120, "default interpolation-join window in seconds")
	flag.BoolVar(&o.columnar, "columnar", true, "execute queries on the columnar batch path (false = row-at-a-time reference path)")
	flag.IntVar(&o.traceRing, "trace-ring", 64, "retained query traces for GET /v1/trace/{id} (negative disables tracing)")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "mount net/http/pprof on this separate listener (empty = no profiling surface)")
	flag.StringVar(&o.debugAddrFile, "debug-addr-file", "", "write the actual debug listen address to this file")
	defaultTimeoutMS := flag.Int64("default-timeout-ms", 30_000, "per-request deadline when the client sends none")
	maxTimeoutMS := flag.Int64("max-timeout-ms", 300_000, "upper clamp on client-supplied deadlines")
	drainMS := flag.Int64("drain-ms", 30_000, "graceful-shutdown drain budget")
	flag.Parse()
	o.defaultTimeout = time.Duration(*defaultTimeoutMS) * time.Millisecond
	o.maxTimeout = time.Duration(*maxTimeoutMS) * time.Millisecond
	o.drainBudget = time.Duration(*drainMS) * time.Millisecond
	if o.catalogDir == "" {
		fmt.Fprintln(os.Stderr, "sjserved: -catalog is required")
		flag.Usage()
		os.Exit(2)
	}
	log.SetPrefix("sjserved: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	if err := run(o); err != nil {
		log.Fatal(err)
	}
}

func run(o options) error {
	store := server.NewStore()
	t0 := time.Now()
	if err := store.LoadDir(o.catalogDir, o.workers); err != nil {
		return err
	}
	log.Printf("catalog %s: %d datasets loaded in %v", o.catalogDir, store.Len(), time.Since(t0).Round(time.Millisecond))

	var resultCache *cache.Cache
	if o.cacheDir != "" {
		var err error
		resultCache, err = cache.Open(o.cacheDir, o.cacheBytes)
		if err != nil {
			return err
		}
		log.Printf("result cache %s: %d entries, budget %d bytes", o.cacheDir, resultCache.Len(), o.cacheBytes)
	}

	// -stats: load the persistent statistics store. server.New profiles the
	// already-loaded catalog into it (AttachStats) and the query path feeds
	// executed-step observations back; the store is saved on drain.
	var statsStore *stats.Store
	if o.statsPath != "" {
		var err error
		statsStore, err = stats.LoadFile(o.statsPath)
		if err != nil {
			return err
		}
		t, d := statsStore.Len()
		log.Printf("statistics store %s: %d tables, %d derivations, epoch %d", o.statsPath, t, d, statsStore.Epoch())
	}

	var placement rdd.Placement
	var sched *cluster.Scheduler
	if o.shuffleWorkers != "" {
		var err error
		sched, err = cluster.Connect(context.Background(), "sjserved", o.shuffleWorkers, cluster.Options{})
		if err != nil {
			return err
		}
		defer sched.Registry().Close()
		workers := sched.Registry().Workers()
		ids := make([]string, len(workers))
		for i, w := range workers {
			ids[i] = w.ID()
		}
		log.Printf("shuffle cluster: %d workers (%s)", len(workers), strings.Join(ids, ", "))
		placement = sched
	}

	s := server.New(store, server.Config{
		Workers:        o.workers,
		MaxConcurrent:  o.maxConcurrent,
		MaxQueue:       o.maxQueue,
		DefaultTimeout: o.defaultTimeout,
		MaxTimeout:     o.maxTimeout,
		PlanCacheSize:  o.planCacheSize,
		WindowSeconds:  o.window,
		Cache:          resultCache,
		RowMode:        !o.columnar,
		TraceRing:      o.traceRing,
		Placement:      placement,
		Stats:          statsStore,
	})
	if sched != nil {
		// The scheduler's exchange counters and cluster_worker_* fleet
		// gauges surface on the daemon's own GET /metrics.
		sched.AttachMetrics(s.Metrics())
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	if o.addrFile != "" {
		if err := writeAddrFile(o.addrFile, ln.Addr().String()); err != nil {
			ln.Close()
			return err
		}
	}

	// The profiling surface gets its own listener and server so the query
	// port never exposes pprof. Best-effort: it dies with the process and
	// takes no part in the drain protocol.
	var debugServer *http.Server
	if o.debugAddr != "" {
		dln, err := net.Listen("tcp", o.debugAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("debug listener: %w", err)
		}
		if o.debugAddrFile != "" {
			if err := writeAddrFile(o.debugAddrFile, dln.Addr().String()); err != nil {
				ln.Close()
				dln.Close()
				return err
			}
		}
		debugServer = &http.Server{Handler: server.DebugHandler()}
		go debugServer.Serve(dln)
		log.Printf("pprof on http://%s/debug/pprof/", dln.Addr())
	}

	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	log.Printf("serving on http://%s (executors=%d queue=%d trace-ring=%d)",
		ln.Addr(), o.maxConcurrent, o.maxQueue, o.traceRing)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case got := <-sig:
		log.Printf("received %v, draining", got)
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	}

	// Graceful shutdown: stop admitting (503 + Retry-After for stragglers
	// on kept-alive connections), close the listener, wait for every
	// accepted query to finish, then flush the result cache.
	s.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), o.drainBudget)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain incomplete after %v: %w", o.drainBudget, err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("serve: %w", err)
	}
	if debugServer != nil {
		debugServer.Close()
	}
	if err := s.Flush(); err != nil {
		return fmt.Errorf("flushing result cache: %w", err)
	}
	if statsStore != nil {
		if err := statsStore.Save(o.statsPath); err != nil {
			return fmt.Errorf("saving statistics store: %w", err)
		}
		t, d := statsStore.Len()
		log.Printf("statistics store saved: %d tables, %d derivations, epoch %d", t, d, statsStore.Epoch())
	}
	log.Printf("drained cleanly, bye")
	return nil
}

// writeAddrFile lands the address via temp + rename so a watcher never
// reads a partial line.
func writeAddrFile(path, addr string) error {
	tmp := filepath.Join(filepath.Dir(path), "."+filepath.Base(path)+".tmp")
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
