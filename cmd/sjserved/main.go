// Command sjserved is ScrubJay's query-serving daemon: it loads a catalog
// directory once and serves derivation queries to many concurrent clients
// over HTTP (see internal/server for the API). Load is shed with
// 429/503 + Retry-After when the bounded executor and its wait queue fill,
// and SIGINT/SIGTERM triggers a graceful drain: the listener closes,
// every accepted query runs to completion, the result-cache index is
// flushed, and the process exits 0. A drain that cannot finish inside
// -drain-ms exits 1 — dropped in-flight queries are a reportable failure,
// not business as usual.
//
//	sjserved -catalog DIR [-addr HOST:PORT] [-addr-file PATH]
//	         [-workers N] [-max-concurrent N] [-max-queue N]
//	         [-cache DIR] [-cache-bytes N] [-plan-cache N]
//	         [-window SEC] [-default-timeout-ms N] [-max-timeout-ms N]
//	         [-drain-ms N]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"scrubjay/internal/cache"
	"scrubjay/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8372", "listen address (port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the actual listen address to this file once serving")
	catalogDir := flag.String("catalog", "", "catalog directory to serve (required)")
	workers := flag.Int("workers", 0, "rdd workers per request (0 = GOMAXPROCS)")
	maxConcurrent := flag.Int("max-concurrent", 4, "executor slots")
	maxQueue := flag.Int("max-queue", 64, "bounded wait queue (negative = none)")
	cacheDir := flag.String("cache", "", "derivation-result cache directory (optional)")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "result-cache budget in bytes")
	planCacheSize := flag.Int("plan-cache", 256, "plan-cache LRU capacity")
	window := flag.Float64("window", 120, "default interpolation-join window in seconds")
	columnar := flag.Bool("columnar", true, "execute queries on the columnar batch path (false = row-at-a-time reference path)")
	defaultTimeoutMS := flag.Int64("default-timeout-ms", 30_000, "per-request deadline when the client sends none")
	maxTimeoutMS := flag.Int64("max-timeout-ms", 300_000, "upper clamp on client-supplied deadlines")
	drainMS := flag.Int64("drain-ms", 30_000, "graceful-shutdown drain budget")
	flag.Parse()
	if *catalogDir == "" {
		fmt.Fprintln(os.Stderr, "sjserved: -catalog is required")
		flag.Usage()
		os.Exit(2)
	}
	log.SetPrefix("sjserved: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	if err := run(*addr, *addrFile, *catalogDir, *workers, *maxConcurrent, *maxQueue,
		*cacheDir, *cacheBytes, *planCacheSize, *window, *columnar,
		time.Duration(*defaultTimeoutMS)*time.Millisecond,
		time.Duration(*maxTimeoutMS)*time.Millisecond,
		time.Duration(*drainMS)*time.Millisecond); err != nil {
		log.Fatal(err)
	}
}

func run(addr, addrFile, catalogDir string, workers, maxConcurrent, maxQueue int,
	cacheDir string, cacheBytes int64, planCacheSize int, window float64, columnar bool,
	defaultTimeout, maxTimeout, drainBudget time.Duration) error {

	store := server.NewStore()
	t0 := time.Now()
	if err := store.LoadDir(catalogDir, workers); err != nil {
		return err
	}
	log.Printf("catalog %s: %d datasets loaded in %v", catalogDir, store.Len(), time.Since(t0).Round(time.Millisecond))

	var resultCache *cache.Cache
	if cacheDir != "" {
		var err error
		resultCache, err = cache.Open(cacheDir, cacheBytes)
		if err != nil {
			return err
		}
		log.Printf("result cache %s: %d entries, budget %d bytes", cacheDir, resultCache.Len(), cacheBytes)
	}

	s := server.New(store, server.Config{
		Workers:        workers,
		MaxConcurrent:  maxConcurrent,
		MaxQueue:       maxQueue,
		DefaultTimeout: defaultTimeout,
		MaxTimeout:     maxTimeout,
		PlanCacheSize:  planCacheSize,
		WindowSeconds:  window,
		Cache:          resultCache,
		RowMode:        !columnar,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if addrFile != "" {
		if err := writeAddrFile(addrFile, ln.Addr().String()); err != nil {
			ln.Close()
			return err
		}
	}
	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	log.Printf("serving on http://%s (executors=%d queue=%d)", ln.Addr(), maxConcurrent, maxQueue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case got := <-sig:
		log.Printf("received %v, draining", got)
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	}

	// Graceful shutdown: stop admitting (503 + Retry-After for stragglers
	// on kept-alive connections), close the listener, wait for every
	// accepted query to finish, then flush the result cache.
	s.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), drainBudget)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain incomplete after %v: %w", drainBudget, err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("serve: %w", err)
	}
	if err := s.Flush(); err != nil {
		return fmt.Errorf("flushing result cache: %w", err)
	}
	log.Printf("drained cleanly, bye")
	return nil
}

// writeAddrFile lands the address via temp + rename so a watcher never
// reads a partial line.
func writeAddrFile(path, addr string) error {
	tmp := filepath.Join(filepath.Dir(path), "."+filepath.Base(path)+".tmp")
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
