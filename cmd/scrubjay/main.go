// Command scrubjay is the analyst-facing CLI: it loads annotated datasets
// from a catalog directory, answers dimension queries by deriving a
// processing pipeline (§5), executes or stores plans (§5.4), and inspects
// the semantic dictionary.
//
// Subcommands:
//
//	scrubjay query  -catalog DIR|-server URL -domains a,b -values x,y[:units] [-plan out.json] [-out FMT:PATH] [-window SEC] [-cache DIR] [-explain|-explain-json] [-trace out.trace.json]
//	scrubjay run    -catalog DIR|-server URL -plan plan.json [-out FMT:PATH] [-cache DIR]
//	scrubjay trace  FILE|TRACE-ID [-server URL] [-check]
//	scrubjay show   -in FMT:PATH [-n 20]
//	scrubjay bench-log [-ledger FILE] [-check] [-append -kind ci|sjbench [-exp NAME] [-note STR] [-bench FILE] [-vet-timing FILE] [-trace FILE]]
//	scrubjay dict
//	scrubjay formats
//	scrubjay derivations
//
// With -server, query and run become thin clients of a running sjserved:
// the same request/response structs ride HTTP instead of calling the
// library in-process.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"scrubjay/internal/cache"
	"scrubjay/internal/catalog"
	"scrubjay/internal/cluster"
	"scrubjay/internal/dataset"
	"scrubjay/internal/derive"
	"scrubjay/internal/engine"
	"scrubjay/internal/obs"
	"scrubjay/internal/pipeline"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/server"
	"scrubjay/internal/stats"
	"scrubjay/internal/wrappers"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "query":
		err = cmdQuery(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "show":
		err = cmdShow(os.Args[2:])
	case "bench-log":
		err = cmdBenchLog(os.Args[2:])
	case "dict":
		err = cmdDict()
	case "formats":
		fmt.Println(strings.Join(wrappers.Formats(), "\n"))
	case "derivations":
		fmt.Println("transformations:")
		for _, n := range derive.TransformationNames() {
			fmt.Println("  " + n)
		}
		fmt.Println("combinations:")
		for _, n := range derive.CombinationNames() {
			fmt.Println("  " + n)
		}
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "scrubjay: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scrubjay:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  scrubjay query  -catalog DIR|-server URL -domains a,b -values x,y[:units] [-plan out.json] [-out FMT:PATH] [-window SEC] [-cache DIR] [-explain|-explain-json] [-trace out.trace.json]
  scrubjay run    -catalog DIR|-server URL -plan plan.json [-out FMT:PATH] [-cache DIR]
  scrubjay trace  FILE|TRACE-ID [-server URL] [-check]
  scrubjay show   -in FMT:PATH [-n 20]
  scrubjay bench-log [-ledger FILE] [-check] [-append -kind ci|sjbench [-exp NAME] [-note STR] [-bench FILE] [-vet-timing FILE] [-trace FILE]]
  scrubjay dict
  scrubjay formats
  scrubjay derivations`)
}

// loadCatalog delegates to the shared catalog loader (internal/catalog),
// which sjserved uses too.
func loadCatalog(ctx *rdd.Context, dir string) (pipeline.Catalog, map[string]semantics.Schema, error) {
	return catalog.Load(ctx, dir)
}

// columnarCatalog pivots every catalog dataset to the columnar
// representation, so executed plans run on the vectorized kernels.
func columnarCatalog(cat pipeline.Catalog) pipeline.Catalog {
	out := make(pipeline.Catalog, len(cat))
	for name, ds := range cat {
		out[name] = ds.Columnar()
	}
	return out
}

// parseSink parses "FMT:PATH" (or "kv:DIR:TABLE") into a wrappers.Source.
func parseSink(spec string) (wrappers.Source, error) {
	i := strings.Index(spec, ":")
	if i <= 0 {
		return wrappers.Source{}, fmt.Errorf("bad sink spec %q (want FMT:PATH)", spec)
	}
	format, rest := spec[:i], spec[i+1:]
	if format == "kv" {
		j := strings.LastIndex(rest, ":")
		if j <= 0 || j == len(rest)-1 {
			return wrappers.Source{}, fmt.Errorf("bad kv spec %q (want kv:DIR:TABLE)", spec)
		}
		return wrappers.Source{Format: "kv", Path: rest[:j], Table: rest[j+1:]}, nil
	}
	return wrappers.Source{Format: format, Path: rest}, nil
}

func openCache(dir string) (*cache.Cache, error) {
	if dir == "" {
		return nil, nil
	}
	return cache.Open(dir, 256<<20)
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	catalogDir := fs.String("catalog", "", "catalog directory")
	domains := fs.String("domains", "", "comma-separated domain dimensions")
	values := fs.String("values", "", "comma-separated value dimensions, each optionally DIM:UNITS")
	planOut := fs.String("plan", "", "write the derivation sequence as JSON to this path")
	out := fs.String("out", "", "unwrap the result to FMT:PATH")
	window := fs.Float64("window", 120, "interpolation-join window in seconds")
	cacheDir := fs.String("cache", "", "enable the derivation-result cache in this directory")
	show := fs.Int("show", 10, "print up to this many result rows")
	explain := fs.Bool("explain", false, "print the engine's search trace")
	explainJSON := fs.Bool("explain-json", false, "print the search trace plus per-step estimated and actual costs as JSON")
	statsPath := fs.String("stats", "", "statistics store file: loaded (or created) before planning, observations saved back after execution")
	traceOut := fs.String("trace", "", "record a full execution trace and write the JSON artifact to this path")
	serverURL := fs.String("server", "", "query a running sjserved instead of the local library")
	columnar := fs.Bool("columnar", true, "execute on the columnar batch path (false = row-at-a-time reference path)")
	shuffleWorkers := fs.String("shuffle-workers", "", "comma-separated sjworker exchange addresses; when set, shuffles run through the worker cluster")
	fs.Parse(args)
	if *catalogDir == "" && *serverURL == "" {
		return fmt.Errorf("query: -catalog (or -server) is required")
	}

	q := engine.Query{}
	for _, d := range strings.Split(*domains, ",") {
		if d = strings.TrimSpace(d); d != "" {
			q.Domains = append(q.Domains, d)
		}
	}
	for _, v := range strings.Split(*values, ",") {
		if v = strings.TrimSpace(v); v != "" {
			qv := engine.QueryValue{Dimension: v}
			if i := strings.Index(v, ":"); i > 0 {
				qv = engine.QueryValue{Dimension: v[:i], Units: v[i+1:]}
			}
			q.Values = append(q.Values, qv)
		}
	}

	if *serverURL != "" {
		if *explain || *explainJSON {
			fmt.Fprintln(os.Stderr, "scrubjay: -explain is unavailable in -server mode (search runs remotely; fetch the trace instead)")
		}
		if *statsPath != "" {
			fmt.Fprintln(os.Stderr, "scrubjay: ignoring -stats in -server mode (the server owns its statistics store)")
		}
		if *traceOut != "" {
			fmt.Fprintln(os.Stderr, "scrubjay: ignoring -trace in -server mode (use `scrubjay trace ID -server URL`)")
		}
		if *cacheDir != "" {
			fmt.Fprintln(os.Stderr, "scrubjay: ignoring -cache in -server mode (the server owns the result cache)")
		}
		return serverQuery(*serverURL, q, *window, *planOut, *out, *show)
	}

	ctx := rdd.NewContext(0)
	if *shuffleWorkers != "" {
		sched, err := cluster.Connect(context.Background(), "scrubjay", *shuffleWorkers, faultOptions())
		if err != nil {
			return err
		}
		defer sched.Registry().Close()
		ctx = ctx.WithPlacement(sched)
		fmt.Fprintf(os.Stderr, "shuffle cluster: %d workers\n", len(sched.Registry().Workers()))
	}
	dict := semantics.DefaultDictionary()
	cat, schemas, err := loadCatalog(ctx, *catalogDir)
	if err != nil {
		return err
	}

	// -stats: load (or start) the statistics store and profile the catalog
	// into it, so the engine costs candidates against real cardinalities.
	// Observations from this run are merged and saved back afterwards.
	var st *stats.Store
	if *statsPath != "" {
		if st, err = stats.LoadFile(*statsPath); err != nil {
			return err
		}
		catalog.Ingest(st, cat, schemas)
	}

	if *columnar {
		cat = columnarCatalog(cat)
	}

	// -trace, -explain-json, and -stats all record the run under a query
	// span (the latter two need executed-step actuals); otherwise tr is nil
	// and every span below is the free nil span.
	var tr *obs.Tracer
	if *traceOut != "" || *explainJSON || st != nil {
		tr = obs.NewTracer("local", nil)
	}
	qspan := tr.Start(obs.KindQuery, "query")

	opts := engine.DefaultOptions()
	opts.WindowSeconds = *window
	opts.Stats = st
	e := engine.New(dict, schemas, opts)
	search := qspan.Child(obs.KindSearch, "plan-search")
	plan, trace, err := e.SolveTraced(context.Background(), q)
	trace.AttachTo(search)
	search.End()
	if *explain && trace != nil {
		fmt.Printf("search trace:\n%s", trace)
	}
	if err != nil {
		// The search failed: with -explain-json there are no steps to
		// report, so emit the search trace alone.
		if *explainJSON && trace != nil {
			if data, jerr := json.MarshalIndent(trace, "", "  "); jerr == nil {
				fmt.Printf("%s\n", data)
			}
		}
		return err
	}
	qspan.SetStr(obs.AttrPlanHash, plan.Hash())
	fmt.Printf("query: %s\nderivation sequence:\n%s", q, plan)

	if *planOut != "" {
		data, err := plan.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*planOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("plan written to %s\n", *planOut)
	}

	c, err := openCache(*cacheDir)
	if err != nil {
		return err
	}
	exec := qspan.Child(obs.KindExec, "execute")
	ctx.SetSpan(exec)
	result, err := pipeline.Execute(context.Background(), ctx, plan, cat, dict, pipeline.ExecOptions{Cache: c})
	if err != nil {
		return err
	}
	emitErr := emit(result, *out, *show)
	exec.End()
	qspan.End()
	var art *obs.Artifact
	if tr != nil {
		art = tr.Artifact()
	}
	if st != nil && art != nil {
		n := stats.Recorder{Store: st}.Record(plan, art.Root, nil)
		if err := st.Save(*statsPath); err != nil {
			return err
		}
		fmt.Printf("stats: %d observations recorded, epoch %d, saved to %s\n", n, st.Epoch(), *statsPath)
	}
	if *explainJSON {
		data, jerr := json.MarshalIndent(explainReport(q, plan, trace, art, st), "", "  ")
		if jerr != nil {
			return jerr
		}
		fmt.Printf("%s\n", data)
	}
	if art != nil && *traceOut != "" {
		data, err := art.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
	return emitErr
}

// explainStep pairs one executed plan step's estimated cost (stamped by the
// cost-based planner when a statistics store is attached) with the actual
// observed from the execution trace.
type explainStep struct {
	Name     string                 `json:"name"`
	Estimate *pipeline.StepEstimate `json:"estimate,omitempty"`
	Actual   *stats.StepActual      `json:"actual,omitempty"`
}

// explainDoc is the -explain-json output: the engine's search trace plus
// per-step estimate-vs-actual rows in execution order.
type explainDoc struct {
	Query      string        `json:"query"`
	PlanHash   string        `json:"plan_hash"`
	StatsEpoch int64         `json:"stats_epoch,omitempty"`
	Search     *engine.Trace `json:"search,omitempty"`
	Steps      []explainStep `json:"steps,omitempty"`
}

func explainReport(q engine.Query, plan *pipeline.Plan, trace *engine.Trace, art *obs.Artifact, st *stats.Store) explainDoc {
	doc := explainDoc{
		Query:      fmt.Sprintf("%s", q),
		PlanHash:   plan.Hash(),
		StatsEpoch: st.Epoch(),
		Search:     trace,
	}
	// Non-source nodes in execution (post) order — the same order
	// stats.Actuals reconstructs step actuals from the trace.
	var nodes []*pipeline.Node
	var walk func(*pipeline.Node)
	walk = func(n *pipeline.Node) {
		if n == nil || n.Kind == pipeline.KindSource {
			return
		}
		for _, in := range n.Inputs {
			walk(in)
		}
		nodes = append(nodes, n)
	}
	walk(plan.Root)
	var actuals []stats.StepActual
	if art != nil {
		var srcRows map[string]int64
		if st != nil {
			srcRows = map[string]int64{}
			for _, s := range stats.NodeSources(plan.Root) {
				if t, ok := st.Table(s); ok {
					srcRows[s] = t.Rows
				}
			}
		}
		actuals = stats.Actuals(plan, art.Root, srcRows)
	}
	for i, n := range nodes {
		step := explainStep{Name: n.Derivation, Estimate: n.Estimate}
		if i < len(actuals) {
			a := actuals[i]
			step.Actual = &a
		}
		doc.Steps = append(doc.Steps, step)
	}
	return doc
}

// serverQuery answers a query through a running sjserved: one /v1/plan
// call for the derivation sequence (so -plan still works), then a
// /v1/execute of that exact plan, streamed back as rows.
// faultOptions builds the cluster options for -shuffle-workers, wiring in
// the CI fault injection hook: when SCRUBJAY_FAULT_KILL_PID names a worker
// process, it is SIGKILLed at the first exchange's push/fetch barrier —
// after map outputs land on it, before any fetch — so the smoke test can
// prove the scheduler discovers the death and retries onto a survivor
// mid-query. Unset (the normal case), the options are zero.
func faultOptions() cluster.Options {
	opts := cluster.Options{}
	pid, err := strconv.Atoi(os.Getenv("SCRUBJAY_FAULT_KILL_PID"))
	if err != nil || pid <= 0 {
		return opts
	}
	var once sync.Once
	opts.PhaseHook = func(phase, _ string) {
		if phase == "barrier" {
			once.Do(func() {
				if p, err := os.FindProcess(pid); err == nil {
					p.Kill()
				}
			})
		}
	}
	return opts
}

func serverQuery(serverURL string, q engine.Query, window float64, planOut, out string, show int) error {
	cl := &server.Client{BaseURL: serverURL}
	pr, err := cl.Plan(server.QueryRequest{Query: q, WindowSeconds: window})
	if err != nil {
		return err
	}
	plan, err := pipeline.Decode(pr.Plan)
	if err != nil {
		return fmt.Errorf("server returned an undecodable plan: %w", err)
	}
	fmt.Printf("query: %s\nplan cache: hit=%v search=%dµs\nderivation sequence:\n%s",
		q, pr.CacheHit, pr.SearchMicros, plan)
	if planOut != "" {
		if err := os.WriteFile(planOut, pr.Plan, 0o644); err != nil {
			return err
		}
		fmt.Printf("plan written to %s\n", planOut)
	}
	return serverExecute(cl, pr.Plan, out, show)
}

// serverExecute runs a serialized plan remotely and renders the streamed
// result like the library path does.
func serverExecute(cl *server.Client, plan []byte, out string, show int) error {
	header, rows, _, err := cl.Execute(server.ExecuteRequest{Plan: plan})
	if err != nil {
		return err
	}
	if header.TraceID != "" {
		fmt.Printf("trace: %s (scrubjay trace %s -server %s)\n", header.TraceID, header.TraceID, cl.BaseURL)
	}
	ctx := rdd.NewContext(0)
	result := dataset.FromRows(ctx, "result", rows, header.Schema, 0)
	return emit(result, out, show)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	catalogDir := fs.String("catalog", "", "catalog directory")
	planPath := fs.String("plan", "", "derivation sequence JSON")
	out := fs.String("out", "", "unwrap the result to FMT:PATH")
	cacheDir := fs.String("cache", "", "enable the derivation-result cache in this directory")
	show := fs.Int("show", 10, "print up to this many result rows")
	serverURL := fs.String("server", "", "execute on a running sjserved instead of the local library")
	columnar := fs.Bool("columnar", true, "execute on the columnar batch path (false = row-at-a-time reference path)")
	fs.Parse(args)
	if (*catalogDir == "" && *serverURL == "") || *planPath == "" {
		return fmt.Errorf("run: -plan and -catalog (or -server) are required")
	}
	data, err := os.ReadFile(*planPath)
	if err != nil {
		return err
	}
	plan, err := pipeline.Decode(data)
	if err != nil {
		return err
	}
	if *serverURL != "" {
		return serverExecute(&server.Client{BaseURL: *serverURL}, data, *out, *show)
	}
	ctx := rdd.NewContext(0)
	dict := semantics.DefaultDictionary()
	cat, _, err := loadCatalog(ctx, *catalogDir)
	if err != nil {
		return err
	}
	if *columnar {
		cat = columnarCatalog(cat)
	}
	c, err := openCache(*cacheDir)
	if err != nil {
		return err
	}
	result, err := pipeline.Execute(context.Background(), ctx, plan, cat, dict, pipeline.ExecOptions{Cache: c})
	if err != nil {
		return err
	}
	return emit(result, *out, *show)
}

func emit(result *dataset.Dataset, out string, show int) error {
	fmt.Printf("result: %d rows, schema %s\n", result.Count(), result.Schema())
	if show > 0 {
		fmt.Print(result.Show(show))
	}
	if out != "" {
		sink, err := parseSink(out)
		if err != nil {
			return err
		}
		if err := wrappers.Write(result, sink); err != nil {
			return err
		}
		fmt.Printf("result written to %s\n", sink.Path)
	}
	return nil
}

// cmdTrace renders (or validates) a trace artifact: a local file from
// `scrubjay query -trace`, or a trace id fetched from a running sjserved.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	serverURL := fs.String("server", "", "fetch the argument as a trace id from this sjserved")
	check := fs.Bool("check", false, "validate the artifact schema instead of rendering")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("trace: a FILE (or, with -server, TRACE-ID) argument is required")
	}
	arg := fs.Arg(0)
	// Accept flags after the positional too (scrubjay trace ID -server URL).
	fs.Parse(fs.Args()[1:])
	if fs.NArg() != 0 {
		return fmt.Errorf("trace: exactly one FILE or TRACE-ID argument is allowed")
	}
	var art *obs.Artifact
	if *serverURL != "" {
		a, err := (&server.Client{BaseURL: *serverURL}).Trace(arg)
		if err != nil {
			return err
		}
		art = a
	} else {
		data, err := os.ReadFile(arg)
		if err != nil {
			return err
		}
		art, err = obs.DecodeArtifact(data)
		if err != nil {
			return fmt.Errorf("trace: %s: %w", arg, err)
		}
	}
	if *check {
		fmt.Printf("trace %s: %d spans, ok\n", art.TraceID, art.SpanCount())
		return nil
	}
	fmt.Print(art.Timeline())
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	in := fs.String("in", "", "input FMT:PATH")
	n := fs.Int("n", 20, "rows to display")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("show: -in is required")
	}
	src, err := parseSink(*in)
	if err != nil {
		return err
	}
	ctx := rdd.NewContext(0)
	ds, err := wrappers.Read(ctx, src)
	if err != nil {
		return err
	}
	fmt.Printf("schema: %s\n", ds.Schema())
	fmt.Print(ds.Show(*n))
	return nil
}

func cmdDict() error {
	dict := semantics.DefaultDictionary()
	fmt.Println("dimensions:")
	for _, n := range dict.DimensionNames() {
		d, _ := dict.LookupDimension(n)
		props := []string{}
		if d.Ordered {
			props = append(props, "ordered")
		} else {
			props = append(props, "unordered")
		}
		if d.Continuous {
			props = append(props, "continuous")
		} else {
			props = append(props, "discrete")
		}
		fmt.Printf("  %-24s %s\n", n, strings.Join(props, ","))
	}
	fmt.Println("units:")
	for _, n := range dict.Units.Names() {
		u, _ := dict.Units.Lookup(n)
		fmt.Printf("  %-24s dimension=%s scale=%g offset=%g\n", n, u.Dimension, u.Scale, u.Offset)
	}
	return nil
}
