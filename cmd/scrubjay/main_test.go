package main

import (
	"os"
	"path/filepath"
	"testing"

	"scrubjay/internal/bench"
	"scrubjay/internal/rdd"
	"scrubjay/internal/wrappers"
)

// writeTestCatalog generates a tiny DAT-1 catalog into dir.
func writeTestCatalog(t *testing.T, dir string) {
	t.Helper()
	ctx := rdd.NewContext(2)
	cfg := bench.DefaultCaseStudyConfig()
	cfg.Racks = 4
	cfg.NodesPerRack = 6
	cfg.AMGRack = 2
	cfg.DAT1DurationSec = 1800
	cat, _, _ := bench.DAT1Catalog(ctx, cfg)
	for name, ds := range cat {
		if err := wrappers.Write(ds, wrappers.Source{Format: "jsonl", Path: filepath.Join(dir, name+".jsonl")}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestParseSink(t *testing.T) {
	src, err := parseSink("csv:/tmp/x.csv")
	if err != nil || src.Format != "csv" || src.Path != "/tmp/x.csv" {
		t.Errorf("parseSink = %+v, %v", src, err)
	}
	for _, bad := range []string{"", "noformat", ":path"} {
		if _, err := parseSink(bad); err == nil {
			t.Errorf("parseSink(%q) should fail", bad)
		}
	}
}

func TestLoadCatalog(t *testing.T) {
	dir := t.TempDir()
	writeTestCatalog(t, dir)
	// Add a file the loader must skip.
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644)
	ctx := rdd.NewContext(1)
	cat, schemas, err := loadCatalog(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"job_queue_log", "node_layout", "rack_temperatures"} {
		if _, ok := cat[want]; !ok {
			t.Errorf("catalog missing %q", want)
		}
		if _, ok := schemas[want]; !ok {
			t.Errorf("schemas missing %q", want)
		}
	}
	// Empty catalog fails.
	if _, _, err := loadCatalog(ctx, t.TempDir()); err == nil {
		t.Error("empty catalog should fail")
	}
	// Missing directory fails.
	if _, _, err := loadCatalog(ctx, filepath.Join(dir, "nope")); err == nil {
		t.Error("missing dir should fail")
	}
}

func TestCmdQueryRunShowEndToEnd(t *testing.T) {
	dir := t.TempDir()
	writeTestCatalog(t, dir)
	planPath := filepath.Join(dir, "out", "plan.json")
	os.MkdirAll(filepath.Dir(planPath), 0o755)
	outPath := filepath.Join(dir, "out", "result.csv")

	// query: solve, execute, store plan and result.
	err := cmdQuery([]string{
		"-catalog", dir,
		"-domains", "job,rack",
		"-values", "application,temperature_difference",
		"-plan", planPath,
		"-out", "csv:" + outPath,
		"-show", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(planPath); err != nil {
		t.Fatalf("plan not written: %v", err)
	}
	if _, err := os.Stat(outPath); err != nil {
		t.Fatalf("result not written: %v", err)
	}

	// run: replay the stored plan, with a cache.
	cacheDir := filepath.Join(dir, "out", "cache")
	if err := cmdRun([]string{
		"-catalog", dir,
		"-plan", planPath,
		"-cache", cacheDir,
		"-show", "1",
	}); err != nil {
		t.Fatal(err)
	}
	// Second replay hits the cache.
	if err := cmdRun([]string{
		"-catalog", dir,
		"-plan", planPath,
		"-cache", cacheDir,
		"-show", "0",
	}); err != nil {
		t.Fatal(err)
	}

	// show: inspect the unwrapped result.
	if err := cmdShow([]string{"-in", "csv:" + outPath, "-n", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdQueryValueUnits(t *testing.T) {
	dir := t.TempDir()
	writeTestCatalog(t, dir)
	if err := cmdQuery([]string{
		"-catalog", dir,
		"-domains", "rack",
		"-values", "temperature:degrees_fahrenheit",
		"-show", "1",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdErrors(t *testing.T) {
	if err := cmdQuery([]string{"-domains", "x"}); err == nil {
		t.Error("query without catalog should fail")
	}
	if err := cmdRun([]string{"-catalog", "/tmp"}); err == nil {
		t.Error("run without plan should fail")
	}
	if err := cmdShow([]string{}); err == nil {
		t.Error("show without input should fail")
	}
	dir := t.TempDir()
	writeTestCatalog(t, dir)
	if err := cmdQuery([]string{"-catalog", dir, "-domains", "job", "-values", "power"}); err == nil {
		t.Error("unsatisfiable query should fail")
	}
	// Corrupt plan file.
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if err := cmdRun([]string{"-catalog", dir, "-plan", bad}); err == nil {
		t.Error("corrupt plan should fail")
	}
	// Missing plan file.
	if err := cmdRun([]string{"-catalog", dir, "-plan", filepath.Join(dir, "none.json")}); err == nil {
		t.Error("missing plan should fail")
	}
}

func TestCmdDictAndFormats(t *testing.T) {
	if err := cmdDict(); err != nil {
		t.Fatal(err)
	}
}

func TestParseSinkKV(t *testing.T) {
	src, err := parseSink("kv:/data/store:jobs")
	if err != nil || src.Format != "kv" || src.Path != "/data/store" || src.Table != "jobs" {
		t.Errorf("parseSink kv = %+v, %v", src, err)
	}
	for _, bad := range []string{"kv:/data/store", "kv::t", "kv:/x:"} {
		if _, err := parseSink(bad); err == nil {
			t.Errorf("parseSink(%q) should fail", bad)
		}
	}
}

func TestLoadCatalogKV(t *testing.T) {
	dir := t.TempDir()
	ctx := rdd.NewContext(2)
	cfg := bench.DefaultCaseStudyConfig()
	cfg.Racks = 3
	cfg.NodesPerRack = 4
	cfg.AMGRack = 1
	cfg.DAT1DurationSec = 1200
	cat, _, _ := bench.DAT1Catalog(ctx, cfg)
	for name, ds := range cat {
		if err := wrappers.Write(ds, wrappers.Source{Format: "kv", Path: dir, Table: name}); err != nil {
			t.Fatal(err)
		}
	}
	loaded, schemas, err := loadCatalog(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"job_queue_log", "node_layout", "rack_temperatures"} {
		if _, ok := loaded[want]; !ok {
			t.Errorf("kv catalog missing %q", want)
		}
		if _, ok := schemas[want]; !ok {
			t.Errorf("kv schemas missing %q", want)
		}
	}
	// A query over the kv catalog works end to end.
	if err := cmdQuery([]string{
		"-catalog", dir,
		"-domains", "rack",
		"-values", "temperature",
		"-show", "1",
	}); err != nil {
		t.Fatal(err)
	}
}
