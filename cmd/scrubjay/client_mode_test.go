package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"scrubjay/internal/rdd"
	"scrubjay/internal/server"
)

// TestCmdQueryServerMode drives the CLI's -server client mode against an
// in-process sjserved handler: query with a plan file, then replay the
// stored plan with run -server.
func TestCmdQueryServerMode(t *testing.T) {
	dir := t.TempDir()
	writeTestCatalog(t, dir)
	st := server.NewStore()
	if err := st.LoadDir(dir, 2); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(st, server.Config{Workers: 2}).Handler())
	defer ts.Close()

	planPath := filepath.Join(t.TempDir(), "plan.json")
	outPath := filepath.Join(t.TempDir(), "out.jsonl")
	err := cmdQuery([]string{
		"-server", ts.URL,
		"-domains", "job,rack",
		"-values", "application,temperature_difference",
		"-plan", planPath,
		"-out", "jsonl:" + outPath,
		"-show", "0",
	})
	if err != nil {
		t.Fatalf("query -server: %v", err)
	}
	if _, err := os.Stat(planPath); err != nil {
		t.Fatalf("plan file not written: %v", err)
	}
	if fi, err := os.Stat(outPath); err != nil || fi.Size() == 0 {
		t.Fatalf("result not written: %v", err)
	}

	// The stored plan replays through run -server.
	if err := cmdRun([]string{"-server", ts.URL, "-plan", planPath, "-show", "0"}); err != nil {
		t.Fatalf("run -server: %v", err)
	}

	// A dead server surfaces as an error, not a hang or panic.
	if err := cmdQuery([]string{"-server", "http://127.0.0.1:1", "-domains", "job", "-values", "application"}); err == nil {
		t.Error("dead server should fail")
	}

	// Local library mode still works against the same catalog (shared
	// loader): guards the thin-wrapper refactor.
	ctx := rdd.NewContext(1)
	if _, _, err := loadCatalog(ctx, dir); err != nil {
		t.Fatal(err)
	}
}
