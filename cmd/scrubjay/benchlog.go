package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"scrubjay/internal/obs"
	"scrubjay/internal/provenance"
)

// cmdBenchLog works the bench provenance ledger (internal/provenance):
//
//	scrubjay bench-log [-ledger FILE]                      render the records
//	scrubjay bench-log -check [-ledger FILE]               validate every line
//	scrubjay bench-log -append -kind ci|sjbench [-exp NAME] [-note STR]
//	                   [-bench FILE] [-vet-timing FILE] [-trace FILE]
//
// -append stamps the current time and git SHA and adds one record; -bench
// and -vet-timing attach the named JSON reports verbatim; -trace reads a
// trace artifact and stores its summary (spans, worker-origin spans,
// workers). -check exits nonzero on any schema-invalid line, naming it.
func cmdBenchLog(args []string) error {
	fs := flag.NewFlagSet("bench-log", flag.ExitOnError)
	ledger := fs.String("ledger", provenance.DefaultLedger, "ledger file (JSONL)")
	check := fs.Bool("check", false, "validate every record instead of rendering")
	appendRec := fs.Bool("append", false, "append one record")
	kind := fs.String("kind", "ci", `record kind: "sjbench" or "ci"`)
	expName := fs.String("exp", "", "experiment name for the record")
	note := fs.String("note", "", "free-form note for the record")
	benchFile := fs.String("bench", "", "attach this JSON bench report verbatim")
	vetFile := fs.String("vet-timing", "", "attach this JSON vet-timing report verbatim")
	traceFile := fs.String("trace", "", "summarize this trace artifact into the record")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("bench-log: unexpected argument %q", fs.Arg(0))
	}

	if *appendRec {
		rec := &provenance.Record{
			Time:       time.Now().UTC().Format(time.RFC3339),
			GitSHA:     provenance.GitHead("."),
			Kind:       *kind,
			Experiment: *expName,
			Note:       *note,
		}
		if *benchFile != "" {
			data, err := os.ReadFile(*benchFile)
			if err != nil {
				return err
			}
			rec.Bench = data
		}
		if *vetFile != "" {
			data, err := os.ReadFile(*vetFile)
			if err != nil {
				return err
			}
			rec.VetTiming = data
		}
		if *traceFile != "" {
			data, err := os.ReadFile(*traceFile)
			if err != nil {
				return err
			}
			art, err := obs.DecodeArtifact(data)
			if err != nil {
				return fmt.Errorf("bench-log: %s: %w", *traceFile, err)
			}
			rec.Trace = provenance.Summarize(art)
		}
		if err := provenance.Append(*ledger, rec); err != nil {
			return err
		}
		fmt.Printf("appended %s record to %s\n", rec.Kind, *ledger)
		return nil
	}

	recs, err := provenance.ReadFile(*ledger)
	if err != nil {
		return err
	}
	if *check {
		fmt.Printf("%s: %d records, ok\n", *ledger, len(recs))
		return nil
	}
	for _, r := range recs {
		sha := r.GitSHA
		if len(sha) > 12 {
			sha = sha[:12]
		}
		fmt.Printf("%-20s %-8s %-10s %-12s", r.Time, r.Kind, r.Experiment, sha)
		if r.Trace != nil {
			fmt.Printf(" trace=%s spans=%d worker_spans=%d workers=%d",
				r.Trace.TraceID, r.Trace.Spans, r.Trace.WorkerSpans, r.Trace.Workers)
		}
		if len(r.Bench) > 0 {
			fmt.Printf(" bench=%dB", len(r.Bench))
		}
		if len(r.VetTiming) > 0 {
			fmt.Printf(" vet_timing=%dB", len(r.VetTiming))
		}
		if r.Note != "" {
			fmt.Printf(" note=%q", r.Note)
		}
		fmt.Println()
	}
	return nil
}
