// Command sjbench regenerates every figure of the paper's evaluation:
//
//	fig3a  Natural Join time vs rows            (§6, Figure 3 top-left)
//	fig3b  Natural Join strong scaling          (§6, Figure 3 top-right)
//	fig3c  Interpolation Join time vs rows      (§6, Figure 3 bottom-left)
//	fig3d  Interpolation Join strong scaling    (§6, Figure 3 bottom-right)
//	fig4   Rack heat profiles under AMG         (§7.2, Figure 4)
//	fig5   Derivation sequence for jobs x heat  (§7.2, Figure 5)
//	fig6   CPU/node series under mg.C + prime95 (§7.3, Figure 6)
//	fig7   Derivation sequence for frequency    (§7.3, Figure 7)
//	engine Derivation-engine query latency      (§5.2 interactive rates)
//	memo   Memoization ablation                 (§5.2)
//	naive  Dual-binning vs naive interp join    (§5.3 ablation)
//	columnar Row-path vs columnar join throughput (this repo's batch engine)
//	obs    Tracing-overhead gates: natural join with tracing off vs on,
//	       plus distributed Fig-5 tracing over a live 2-worker cluster
//	shuffle Local vs 2-worker distributed Fig-5 (bit-for-bit gate)
//	all    Everything above
//
// The columnar experiment doubles as a regression gate: with -out it writes
// the comparison to a JSON file (BENCH_columnar.json in CI) and exits
// nonzero if the columnar path is slower than the row path on any join.
//
// Absolute numbers depend on the host; the harness checks and reports the
// *shapes* the paper claims (linearity, strong-scaling, outliers,
// throttling contrast) and EXPERIMENTS.md records a reference run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"scrubjay/internal/bench"
	"scrubjay/internal/provenance"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run")
		rowsMin = flag.Int("rows-min", 20_000, "figure 3 sweep: minimum rows")
		rowsMax = flag.Int("rows-max", 200_000, "figure 3 sweep: maximum rows (paper: 40M)")
		rows    = flag.Int("rows", 100_000, "figure 3 scaling: fixed rows (paper: 40M/16M)")
		window  = flag.Float64("window", 2, "interpolation window seconds for figure 3")
		racks   = flag.Int("racks", 12, "case studies: racks")
		perRack = flag.Int("nodes-per-rack", 32, "case studies: nodes per rack")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		reps    = flag.Int("reps", 1, "repetitions per figure-3 sweep point (min kept)")
		out     = flag.String("out", "", "columnar/obs: write the comparison report to this JSON file")
		history = flag.String("history", "", "append one provenance record per experiment to this JSONL ledger")
	)
	flag.Parse()

	w := bench.DefaultJoinWorkload()
	w.Rows = *rows
	w.Workers = *workers
	w.WindowSeconds = *window

	cs := bench.DefaultCaseStudyConfig()
	cs.Racks = *racks
	cs.NodesPerRack = *perRack
	if cs.AMGRack >= cs.Racks {
		cs.AMGRack = cs.Racks - 3
	}
	cs.Workers = *workers

	// Experiments that produce a structured report hand it to histReport;
	// run appends one provenance record per completed experiment when
	// -history names a ledger, so every bench number ties back to a commit.
	var histReport any
	logHistory := func(name string) error {
		if *history == "" {
			return nil
		}
		rec := &provenance.Record{
			Time:       time.Now().UTC().Format(time.RFC3339),
			GitSHA:     provenance.GitHead("."),
			Kind:       "sjbench",
			Experiment: name,
		}
		if histReport != nil {
			raw, err := json.Marshal(histReport)
			if err != nil {
				return err
			}
			rec.Bench = raw
		}
		return provenance.Append(*history, rec)
	}
	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		histReport = nil
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "sjbench %s: %v\n", name, err)
			os.Exit(1)
		}
		if err := logHistory(name); err != nil {
			fmt.Fprintf(os.Stderr, "sjbench %s: provenance ledger: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("fig3a", func() error {
		s, err := bench.Fig3Rows("Natural Join, 10 nodes (simulated), 32 cores/node",
			bench.RunNaturalJoin, w, bench.RowSweep(*rowsMin, *rowsMax), *reps)
		if err != nil {
			return err
		}
		s.Print(os.Stdout)
		fmt.Printf("shape: roughly linear in rows = %v\n", s.RoughlyLinear(8))
		return nil
	})
	run("fig3b", func() error {
		s, err := bench.Fig3Scaling("Natural Join, strong scaling, 32 cores/node", bench.RunNaturalJoin, w)
		if err != nil {
			return err
		}
		s.Print(os.Stdout)
		fmt.Printf("shape: non-increasing with nodes = %v\n", s.Monotone(0.01))
		return nil
	})
	run("fig3c", func() error {
		s, err := bench.Fig3Rows("Interpolation Join, 10 nodes (simulated), 32 cores/node",
			bench.RunInterpJoin, w, bench.RowSweep(*rowsMin, *rowsMax), *reps)
		if err != nil {
			return err
		}
		s.Print(os.Stdout)
		fmt.Printf("shape: roughly linear in rows = %v\n", s.RoughlyLinear(8))
		return nil
	})
	run("fig3d", func() error {
		s, err := bench.Fig3Scaling("Interpolation Join, strong scaling, 32 cores/node", bench.RunInterpJoin, w)
		if err != nil {
			return err
		}
		s.Print(os.Stdout)
		fmt.Printf("shape: non-increasing with nodes = %v\n", s.Monotone(0.01))
		return nil
	})
	run("fig4", func() error {
		res, err := bench.RunFig4(cs)
		if err != nil {
			return err
		}
		fmt.Printf("derived dataset: %d rows\n", res.JoinedRows)
		fmt.Printf("hottest (rack, application) = (%s, %s); paper finds (rack17, AMG)\n",
			res.HottestRack, res.HottestApp)
		keys := make([]string, 0, len(res.HeatByRackApp))
		for k := range res.HeatByRackApp {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return res.HeatByRackApp[keys[i]] > res.HeatByRackApp[keys[j]] })
		fmt.Println("top 5 by mean heat:")
		for i, k := range keys {
			if i == 5 {
				break
			}
			fmt.Printf("  %-24s %6.2f deltaC\n", k, res.HeatByRackApp[k])
		}
		for _, p := range res.Profiles {
			fmt.Printf("%-24s %s\n", p.Label, p.Sparkline(48))
		}
		fmt.Println()
		bench.PrintAll(os.Stdout, res.Profiles)
		return nil
	})
	run("fig5", func() error {
		res, err := bench.RunFig5Plan()
		if err != nil {
			return err
		}
		fmt.Printf("solved in %v\n%s", res.SolveDuration, res.Plan)
		fmt.Printf("matches paper Figure 5 = %v\n", res.MatchesPaper)
		return nil
	})
	run("fig6", func() error {
		res, err := bench.RunFig6(cs)
		if err != nil {
			return err
		}
		fmt.Printf("derived dataset: %d rows\n", res.JoinedRows)
		fmt.Println("per-run means (runs 1-3 = mg.C, 4-6 = prime95):")
		metrics := bench.Fig6MetricColumns()
		fmt.Printf("%-14s", "run")
		for _, m := range metrics {
			fmt.Printf(" %18s", m)
		}
		fmt.Println()
		for _, r := range res.Runs {
			fmt.Printf("%-14s", r)
			for _, m := range metrics {
				fmt.Printf(" %18.4g", res.PerRunMeans[r][m])
			}
			fmt.Println()
		}
		fmt.Println("\nsignal shapes:")
		for _, m := range metrics {
			s := res.Series[m]
			fmt.Printf("%-20s %s\n", m, s.Sparkline(64))
		}
		return nil
	})
	run("fig7", func() error {
		res, err := bench.RunFig7Plan()
		if err != nil {
			return err
		}
		fmt.Printf("solved in %v\n%s", res.SolveDuration, res.Plan)
		fmt.Printf("matches expected sequence = %v\n", res.MatchesPaper)
		fmt.Println("note: the paper draws the final combine as a natural join with time")
		fmt.Println("elided; with explicit time domains the engine selects an interpolation")
		fmt.Println("join with exact node matching (see DESIGN.md).")
		return nil
	})
	run("engine", func() error {
		s, err := bench.EngineLatency([]int{2, 4, 8, 16, 24, 32})
		if err != nil {
			return err
		}
		s.Print(os.Stdout)
		return nil
	})
	run("memo", func() error {
		res, err := bench.RunMemoAblation(8, 5)
		if err != nil {
			return err
		}
		fmt.Printf("catalog=%d datasets, %d solves\n", res.CatalogSize, res.Solves)
		fmt.Printf("with memoization:    %v (%d memo hits)\n", res.WithMemo, res.MemoHits)
		fmt.Printf("without memoization: %v\n", res.WithoutMemo)
		return nil
	})
	run("columnar", func() error {
		creps := *reps
		if creps < 3 {
			creps = 3 // best-of-3 minimum: one rep is too noisy to gate on
		}
		report, err := bench.RunColumnarCompare(w, creps)
		if err != nil {
			return err
		}
		histReport = report
		report.Print(os.Stdout)
		if *out != "" {
			if err := report.WriteFile(*out); err != nil {
				return err
			}
			fmt.Printf("report written to %s\n", *out)
		}
		for _, c := range report.Comparisons {
			if c.Speedup < 1 {
				return fmt.Errorf("columnar %s regressed: %.2fx the row path's throughput", c.Name, c.Speedup)
			}
		}
		return nil
	})
	run("obs", func() error {
		creps := *reps
		if creps < 5 {
			creps = 5
		}
		report, err := bench.RunObsOverhead(w, creps)
		if err != nil {
			return err
		}
		// Distributed leg: the same budget applied to fleet-wide tracing —
		// Fig-5 over 2 live workers, tracing on vs off. Bigger than the
		// shuffle gate's fixture: the per-exchange tracing cost (span
		// recording, shipment, grafting) is near-constant, so the query must
		// be large enough that a real deployment's amortization shows.
		dcfg := cs
		dcfg.Racks, dcfg.NodesPerRack, dcfg.AMGRack = 4, 8, 2
		dcfg.DAT1DurationSec = 28800
		dcfg.Partitions = 4
		dist, err := bench.RunObsDistOverhead(dcfg, creps)
		if err != nil {
			return err
		}
		report.Dist = dist
		histReport = report
		report.Print(os.Stdout)
		if *out != "" {
			if err := report.WriteFile(*out); err != nil {
				return err
			}
			fmt.Printf("report written to %s\n", *out)
		}
		if !report.WithinBudget {
			return fmt.Errorf("disabled-tracing hot path regressed past the %.0f%% budget: median off/collected ratio %.3f",
				report.Budget*100, report.GateRatio)
		}
		if !dist.WithinBudget {
			return fmt.Errorf("distributed tracing regressed past the %.0f%% budget: median on/off ratio %.3f",
				dist.Budget*100, dist.GateRatio)
		}
		return nil
	})
	run("shuffle", func() error {
		scfg := cs
		// Scale to the server suite's Fig-5 fixture: big enough that every
		// shuffle moves real batches, small enough for a CI gate.
		scfg.Racks, scfg.NodesPerRack, scfg.AMGRack = 4, 6, 2
		scfg.DAT1DurationSec = 1800
		scfg.Partitions = 4
		report, err := bench.RunShuffleCompare(scfg, *reps)
		if err != nil {
			return err
		}
		histReport = report
		report.Print(os.Stdout)
		if *out != "" {
			if err := report.WriteFile(*out); err != nil {
				return err
			}
			fmt.Printf("report written to %s\n", *out)
		}
		if !report.Identical {
			return fmt.Errorf("distributed Fig-5 output is not byte-identical to the local run")
		}
		return nil
	})
	run("plan", func() error {
		preps := *reps
		if preps < 3 {
			preps = 3 // best-of-3 minimum for the wall-clock gate
		}
		pcfg := cs
		// Same scale as the shuffle gate's Fig-5 fixture.
		pcfg.Racks, pcfg.NodesPerRack, pcfg.AMGRack = 4, 6, 2
		pcfg.DAT1DurationSec = 1800
		pcfg.Partitions = 4
		report, err := bench.RunPlanCompare(pcfg, 60_000, preps)
		if err != nil {
			return err
		}
		histReport = report
		report.Print(os.Stdout)
		if *out != "" {
			if err := report.WriteFile(*out); err != nil {
				return err
			}
			fmt.Printf("report written to %s\n", *out)
		}
		for _, c := range report.Workloads {
			if !c.Identical {
				return fmt.Errorf("plan %s: warm plan produced a different row multiset", c.Name)
			}
			if !c.WarmCostNotHigher {
				return fmt.Errorf("plan %s: cost-based plan estimates more CPU than the heuristic plan", c.Name)
			}
		}
		for _, c := range report.Workloads {
			if c.Name == "chain" {
				if !c.Switched {
					return fmt.Errorf("plan chain: statistics did not flip the join order")
				}
				if !c.WarmNotSlower {
					return fmt.Errorf("plan chain: cost-based plan ran slower (warm %.1fms > cold %.1fms)",
						c.Warm.WallMillis, c.Cold.WallMillis)
				}
			}
		}
		return nil
	})
	run("naive", func() error {
		// Sweep rows to expose the crossover: the naive all-pairs baseline
		// is quadratic per key group, the dual-binning algorithm linear.
		fmt.Printf("%-10s %-16s %-16s\n", "rows", "dual-binning", "naive-pairwise")
		for _, rows := range bench.RowSweep(*rowsMin, *rowsMax) {
			wn := w
			wn.Rows = rows
			fast, err := bench.RunInterpJoin(wn)
			if err != nil {
				return err
			}
			naive, err := bench.RunNaiveInterpJoin(wn)
			if err != nil {
				return err
			}
			fmt.Printf("%-10d %-16v %-16v\n", rows, fast.Wall.Round(1e6), naive.Wall.Round(1e6))
		}
		return nil
	})
}
