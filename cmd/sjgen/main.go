// Command sjgen generates the synthetic monitoring datasets of the paper's
// case studies (§7) into a directory of files with schema sidecars, so the
// scrubjay CLI can operate on them like any other wrapped data source.
//
// Usage:
//
//	sjgen -out DIR [-dat 1|2] [-format jsonl|csv] [-racks N] [-nodes-per-rack N]
//	      [-duration SEC] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"scrubjay/internal/bench"
	"scrubjay/internal/dataset"
	"scrubjay/internal/facility"
	"scrubjay/internal/rdd"
	"scrubjay/internal/workload"
	"scrubjay/internal/wrappers"
)

func main() {
	var (
		out      = flag.String("out", "", "output directory (required)")
		dat      = flag.Int("dat", 1, "which dedicated-access-time session to simulate (1 or 2)")
		format   = flag.String("format", "jsonl", "output format: jsonl or csv")
		racks    = flag.Int("racks", 20, "number of racks")
		perRack  = flag.Int("nodes-per-rack", 64, "nodes per rack")
		amgRack  = flag.Int("amg-rack", 17, "rack hosting the AMG job (DAT 1)")
		duration = flag.Int64("duration", 7200, "DAT-1 duration in seconds")
		runSec   = flag.Int64("run", 300, "DAT-2 per-run duration in seconds")
		gapSec   = flag.Int64("gap", 60, "DAT-2 gap between runs in seconds")
		seed     = flag.Int64("seed", 1, "simulation seed")
		withNet  = flag.Bool("with-network", false, "also emit per-link network counters and the link layout (DAT 1)")
		withFS   = flag.Bool("with-fs", false, "also emit filesystem counters, instruction samples, and the node/server map (DAT 1)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "sjgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	if *format != "jsonl" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "sjgen: unsupported format %q\n", *format)
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "sjgen:", err)
		os.Exit(1)
	}

	cfg := bench.DefaultCaseStudyConfig()
	cfg.Racks = *racks
	cfg.NodesPerRack = *perRack
	cfg.AMGRack = *amgRack
	cfg.DAT1DurationSec = *duration
	cfg.DAT2RunSec = *runSec
	cfg.DAT2GapSec = *gapSec
	cfg.Seed = *seed

	ctx := rdd.NewContext(0)
	var cat map[string]*dataset.Dataset
	switch *dat {
	case 1:
		c, _, sched := bench.DAT1Catalog(ctx, cfg)
		cat = c
		if *withNet {
			f := facility.New(facility.Config{Racks: cfg.Racks, NodesPerRack: cfg.NodesPerRack, Seed: cfg.Seed})
			nodes := f.Nodes()
			cat["link_layout"] = workload.LinkLayout(ctx, nodes, cfg.Partitions)
			cat["network_counters"] = workload.SimulateNetwork(ctx, sched, nodes, 0, cfg.DAT1DurationSec,
				workload.DefaultNetworkConfig(), cfg.Partitions)
		}
		if *withFS {
			f := facility.New(facility.Config{Racks: cfg.Racks, NodesPerRack: cfg.NodesPerRack, Seed: cfg.Seed})
			nodes := f.Nodes()
			fsc := workload.DefaultFSConfig()
			cat["fs_map"] = workload.FSMap(ctx, nodes, fsc, cfg.Partitions)
			cat["fs_counters"] = workload.SimulateFSCounters(ctx, fsc, 0, cfg.DAT1DurationSec, cfg.Partitions)
			cat["instruction_samples"] = workload.SimulateInstructionSamples(ctx, fsc,
				nodes[:min(4, len(nodes))], 4, 0, cfg.DAT1DurationSec, cfg.Partitions)
		}
	case 2:
		c, _, _ := bench.DAT2Catalog(ctx, cfg)
		cat = c
	default:
		fmt.Fprintf(os.Stderr, "sjgen: unknown DAT %d\n", *dat)
		os.Exit(2)
	}

	for name, ds := range cat {
		path := filepath.Join(*out, name+"."+*format)
		if err := wrappers.Write(ds, wrappers.Source{Format: *format, Path: path}); err != nil {
			fmt.Fprintln(os.Stderr, "sjgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %-22s %8d rows -> %s\n", name, ds.Count(), path)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
