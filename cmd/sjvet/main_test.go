package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"scrubjay/internal/lint"
)

// fixture returns the path to the internal/lint per-analyzer fixture module.
func fixture(t *testing.T) string {
	t.Helper()
	p, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunTextOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", fixture(t), "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (fixture has findings); stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, analyzer := range []string{"[purity]", "[determinism]", "[lockdiscipline]", "[unitsafety]"} {
		if !strings.Contains(out, analyzer) {
			t.Errorf("output missing %s findings:\n%s", analyzer, out)
		}
	}
	if !strings.Contains(out, "purity/purity.go:") {
		t.Errorf("findings should use module-relative paths:\n%s", out)
	}
}

func TestRunJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", fixture(t), "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	findings, err := lint.DecodeJSON(stdout.Bytes())
	if err != nil {
		t.Fatalf("output is not valid findings JSON: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("JSON output has no findings")
	}
	for _, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("incomplete JSON finding: %+v", f)
		}
	}
}

func TestRunPackageSelection(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", fixture(t), "./rdd"}, &stdout, &stderr); code != 0 {
		t.Errorf("clean fixture package: exit = %d, want 0; out: %s", code, stdout.String())
	}
	stdout.Reset()
	if code := run([]string{"-C", fixture(t), "./purity"}, &stdout, &stderr); code != 1 {
		t.Errorf("dirty fixture package: exit = %d, want 1", code)
	}
	if out := stdout.String(); strings.Contains(out, "locks/locks.go") {
		t.Errorf("selection leaked other packages' findings:\n%s", out)
	}
	stdout.Reset()
	if code := run([]string{"-C", fixture(t), "./nosuchpkg"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown pattern: exit = %d, want 2", code)
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{"purity:", "determinism:", "lockdiscipline:", "unitsafety:"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list missing %s\n%s", name, stdout.String())
		}
	}
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pat, path string
		want      bool
	}{
		{"./...", "scrubjay/internal/rdd", true},
		{"all", "scrubjay/internal/rdd", true},
		{".", "scrubjay", true},
		{"./internal/rdd", "scrubjay/internal/rdd", true},
		{"./internal/rdd", "scrubjay/internal/rddx", false},
		{"./internal/...", "scrubjay/internal/derive", true},
		{"./internal/...", "scrubjay/cmd/scrubjay", false},
		{"scrubjay/internal/rdd", "scrubjay/internal/rdd", true},
		{"scrubjay/internal/...", "scrubjay/internal/lint", true},
	}
	for _, c := range cases {
		if got := matchPattern("scrubjay", c.pat, c.path); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.pat, c.path, got, c.want)
		}
	}
}
