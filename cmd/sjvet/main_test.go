package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scrubjay/internal/lint"
)

// fixture returns the path to the internal/lint per-analyzer fixture module.
func fixture(t *testing.T) string {
	t.Helper()
	p, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunTextOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", fixture(t), "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (fixture has findings); stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, analyzer := range []string{"[purity]", "[determinism]", "[lockdiscipline]", "[unitsafety]"} {
		if !strings.Contains(out, analyzer) {
			t.Errorf("output missing %s findings:\n%s", analyzer, out)
		}
	}
	if !strings.Contains(out, "purity/purity.go:") {
		t.Errorf("findings should use module-relative paths:\n%s", out)
	}
}

func TestRunJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", fixture(t), "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	findings, err := lint.DecodeJSON(stdout.Bytes())
	if err != nil {
		t.Fatalf("output is not valid findings JSON: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("JSON output has no findings")
	}
	for _, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("incomplete JSON finding: %+v", f)
		}
	}
}

func TestRunPackageSelection(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", fixture(t), "./rdd"}, &stdout, &stderr); code != 0 {
		t.Errorf("clean fixture package: exit = %d, want 0; out: %s", code, stdout.String())
	}
	stdout.Reset()
	if code := run([]string{"-C", fixture(t), "./purity"}, &stdout, &stderr); code != 1 {
		t.Errorf("dirty fixture package: exit = %d, want 1", code)
	}
	if out := stdout.String(); strings.Contains(out, "locks/locks.go") {
		t.Errorf("selection leaked other packages' findings:\n%s", out)
	}
	stdout.Reset()
	if code := run([]string{"-C", fixture(t), "./nosuchpkg"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown pattern: exit = %d, want 2", code)
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{"purity:", "determinism:", "lockdiscipline:", "unitsafety:", "frameimmut:", "ctxflow:", "goroleak:", "hotalloc:", "retain:"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list missing %s\n%s", name, stdout.String())
		}
	}
}

// TestRunAnalyzerFilter: -run restricts the suite, keeps the exit-code
// contract (0 clean / 1 findings / 2 usage), and treats baseline entries
// for unselected analyzers or unanalyzed packages as out of scope rather
// than stale.
func TestRunAnalyzerFilter(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", fixture(t), "-run", "hotalloc,retain", "./hot"}, &stdout, &stderr); code != 1 {
		t.Fatalf("-run hotalloc,retain ./hot: exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		if !strings.Contains(line, "[hotalloc]") && !strings.Contains(line, "[retain]") {
			t.Errorf("-run leaked a foreign analyzer's finding: %s", line)
		}
	}
	if !strings.Contains(stdout.String(), "[retain]") {
		t.Errorf("expected retain findings in ./hot:\n%s", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"-C", fixture(t), "-run", "nosuchanalyzer", "./..."}, &stdout, &stderr); code != 2 {
		t.Errorf("-run with an unknown analyzer: exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "nosuchanalyzer") {
		t.Errorf("diagnostic should name the unknown analyzer: %s", stderr.String())
	}

	// Record the full-suite baseline for ./hot, then re-run with only
	// hotalloc selected and only the rdd package analyzed: the retain and
	// hot-package entries are out of scope, so nothing is stale and the
	// clean selection exits 0.
	dir := t.TempDir()
	baseline := filepath.Join(dir, "b")
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", fixture(t), "-baseline", baseline, "-write-baseline", "./hot"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline ./hot: exit = %d; stderr: %s", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", fixture(t), "-baseline", baseline, "-run", "hotalloc", "./rdd"}, &stdout, &stderr); code != 0 {
		t.Errorf("out-of-scope baseline entries reported: exit = %d; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
}

// TestRunBrokenModule: a module that fails type-checking must exit 2 with a
// diagnostic, never panic.
func TestRunBrokenModule(t *testing.T) {
	broken, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata", "broken"))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", broken, "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("broken module: exit = %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "type-checking") {
		t.Errorf("diagnostic should mention type-checking, got: %s", stderr.String())
	}
}

// TestRunSarif: -sarif writes a valid log whose results mirror the text
// findings, including on a clean package selection (empty results array).
func TestRunSarif(t *testing.T) {
	dir := t.TempDir()
	sarifPath := filepath.Join(dir, "out.sarif")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", fixture(t), "-sarif", sarifPath, "./purity"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"version": "2.1.0"`) || !strings.Contains(string(data), `"ruleId": "purity"`) {
		t.Errorf("SARIF log missing version or purity results:\n%s", data)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", fixture(t), "-sarif", sarifPath, "./rdd"}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean selection exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	data, err = os.ReadFile(sarifPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"results": []`) {
		t.Errorf("clean run should still write a log with empty results:\n%s", data)
	}
}

// TestRunBaselineWorkflow drives the full lifecycle: record a baseline,
// verify it silences the recorded findings, then shrink it without a source
// fix and verify nothing resurfaces silently (fresh findings fail the run).
func TestRunBaselineWorkflow(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "sjvet.baseline")
	var stdout, stderr bytes.Buffer

	if code := run([]string{"-C", fixture(t), "-baseline", baseline, "-write-baseline", "./purity"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "purity/purity.go\tpurity\t") {
		t.Fatalf("baseline should record fixture findings:\n%s", data)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", fixture(t), "-baseline", baseline, "./purity"}, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run exit = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}

	// Shrink the baseline without fixing the source: the dropped entry's
	// finding is fresh again and the run must fail.
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if err := os.WriteFile(baseline, []byte(strings.Join(lines[:len(lines)-1], "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", fixture(t), "-baseline", baseline, "./purity"}, &stdout, &stderr); code != 1 {
		t.Fatalf("shrunk baseline without source fix: exit = %d, want 1", code)
	}
	if stdout.String() == "" {
		t.Error("the un-baselined finding should be printed")
	}

	// A stale entry (finding no longer produced) must also fail.
	stale := append([]string{}, lines...)
	stale = append(stale, "purity/purity.go\tpurity\tno such finding anymore")
	if err := os.WriteFile(baseline, []byte(strings.Join(stale, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", fixture(t), "-baseline", baseline, "./purity"}, &stdout, &stderr); code != 1 {
		t.Fatalf("stale baseline entry: exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "stale baseline entry") {
		t.Errorf("stderr should name the stale entry, got: %s", stderr.String())
	}

	if code := run([]string{"-write-baseline"}, &stdout, &stderr); code != 2 {
		t.Error("-write-baseline without -baseline should exit 2")
	}
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pat, path string
		want      bool
	}{
		{"./...", "scrubjay/internal/rdd", true},
		{"all", "scrubjay/internal/rdd", true},
		{".", "scrubjay", true},
		{"./internal/rdd", "scrubjay/internal/rdd", true},
		{"./internal/rdd", "scrubjay/internal/rddx", false},
		{"./internal/...", "scrubjay/internal/derive", true},
		{"./internal/...", "scrubjay/cmd/scrubjay", false},
		{"scrubjay/internal/rdd", "scrubjay/internal/rdd", true},
		{"scrubjay/internal/...", "scrubjay/internal/lint", true},
	}
	for _, c := range cases {
		if got := matchPattern("scrubjay", c.pat, c.path); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.pat, c.path, got, c.want)
		}
	}
}
