// Command sjvet is ScrubJay's static-analysis gate: it loads the module,
// type-checks every package, and runs the internal/lint analyzer suite
// (purity, determinism, lockdiscipline, unitsafety). Any finding is printed
// as file:line:col: [analyzer] message and the process exits nonzero, so
// sjvet slots directly into CI next to go vet.
//
// Usage:
//
//	sjvet [-json] [-tests] [-list] [-C dir] [packages]
//
// Package patterns are module-relative ("./...", "./internal/rdd",
// "scrubjay/internal/derive/..."); the default and "./..." analyze the whole
// module. Findings are suppressed with
//
//	//sjvet:ignore <analyzer> -- reason
//
// on the offending line or the line above it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"path/filepath"
	"strings"

	"scrubjay/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sjvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	withTests := fs.Bool("tests", false, "also analyze _test.go files")
	list := fs.Bool("list", false, "list analyzers and exit")
	chdir := fs.String("C", "", "directory to resolve the module from (default: cwd)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}

	dir := *chdir
	if dir == "" {
		dir = "."
	}
	root, err := lint.FindModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	mod, err := lint.LoadModule(root, lint.LoadOptions{IncludeTests: *withTests})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	selected, err := selectPackages(mod, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	scoped := &lint.Module{Root: mod.Root, Path: mod.Path, Fset: mod.Fset, Pkgs: selected}

	findings := lint.Run(scoped, analyzers)
	relativize(findings, root)

	if *jsonOut {
		data, err := lint.EncodeJSON(findings)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintln(stdout, string(data))
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "sjvet: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// relativize rewrites finding filenames relative to the module root for
// stable, readable output.
func relativize(fs []lint.Finding, root string) {
	for i := range fs {
		if rel, err := filepath.Rel(root, fs[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			fs[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}
}

// selectPackages filters the module's packages by the command-line patterns.
func selectPackages(mod *lint.Module, patterns []string) ([]*lint.Package, error) {
	if len(patterns) == 0 {
		return mod.Pkgs, nil
	}
	keep := map[string]bool{}
	for _, pat := range patterns {
		matched := false
		for _, pkg := range mod.Pkgs {
			if matchPattern(mod.Path, pat, pkg.Path) {
				keep[pkg.Path] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("sjvet: pattern %q matches no packages", pat)
		}
	}
	var out []*lint.Package
	for _, pkg := range mod.Pkgs {
		if keep[pkg.Path] {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// matchPattern reports whether a go-style package pattern selects the import
// path. "./x" anchors at the module root; a trailing "/..." matches the
// subtree; "./..." and "all" match everything.
func matchPattern(modPath, pat, importPath string) bool {
	if pat == "all" || pat == "./..." || pat == "..." {
		return true
	}
	pat = strings.TrimSuffix(pat, "/")
	if strings.HasPrefix(pat, "./") {
		pat = path.Join(modPath, strings.TrimPrefix(pat, "./"))
	} else if pat == "." {
		pat = modPath
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return importPath == sub || strings.HasPrefix(importPath, sub+"/")
	}
	return importPath == pat
}
