// Command sjvet is ScrubJay's static-analysis gate: it loads the module,
// type-checks every package, and runs the internal/lint analyzer suite:
//
//   - ctxflow: dropped or ignored context plumbing on cancellable paths
//   - determinism: time/rand/map-order nondeterminism in derivation code
//   - errflow: errors overwritten or discarded before any path reads them,
//     and ExecFailures flattened into generic errors
//   - frameimmut: writes to published (shared) frame storage
//   - goroleak: goroutines with no termination edge
//   - hotalloc: per-iteration allocation on the serving hot path
//   - leakcheck: conns/files/tickers/spans not released on every CFG path
//   - lockdiscipline: blocking operations while holding a mutex
//   - lockorder: module-wide lock-acquisition-order cycles (deadlocks)
//   - purity: impure rdd/kernel compute closures
//   - retain: hot-path callees pinning caller buffers
//   - unitsafety: arithmetic across mismatched units
//
// Any finding is printed as file:line:col: [analyzer] message and the
// process exits nonzero, so sjvet slots directly into CI next to go vet.
// Flow-sensitive findings (errflow, leakcheck, lockorder) carry the
// control-flow path that demonstrates them: indented step lines in text
// output and SARIF codeFlows in the -sarif artifact.
//
// Usage:
//
//	sjvet [-json] [-tests] [-list] [-run a,b] [-timing] [-timing-json file] [-C dir] [-sarif file] [-baseline file] [-write-baseline] [packages]
//
// -run restricts the run to a comma-separated subset of analyzers (e.g.
// -run hotalloc,retain); with -baseline, entries for analyzers outside the
// subset are ignored rather than reported stale. -timing prints the
// wall-clock cost of each analyzer (and the shared summary/hot-path build
// stages) to stderr, so a regression in analysis cost is visible before it
// blows the CI budget; -timing-json writes the same rows plus per-analyzer
// finding counts as a JSON artifact for trend tracking.
//
// Package patterns are module-relative ("./...", "./internal/rdd",
// "scrubjay/internal/derive/..."); the default and "./..." analyze the whole
// module. Interprocedural summaries are always computed over the whole
// module, so scoping the analysis to one package still sees helper
// functions elsewhere. Findings are suppressed with
//
//	//sjvet:ignore <analyzer> -- reason
//
// on the offending line or the line above it (scoped to the enclosing
// function), or grandfathered in a reviewed baseline file:
//
//	sjvet -write-baseline -baseline sjvet.baseline ./...   # record
//	sjvet -baseline sjvet.baseline ./...                   # enforce
//
// With -baseline, sjvet fails on findings not in the baseline AND on stale
// baseline entries (listed but no longer produced), so the file can only
// shrink together with the source fix. -sarif writes a SARIF 2.1.0 log of
// the fresh findings for CI artifact upload.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"path/filepath"
	"strings"

	"scrubjay/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sjvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	withTests := fs.Bool("tests", false, "also analyze _test.go files")
	list := fs.Bool("list", false, "list analyzers and exit")
	chdir := fs.String("C", "", "directory to resolve the module from (default: cwd)")
	sarifPath := fs.String("sarif", "", "write a SARIF 2.1.0 log of the (fresh) findings to this file")
	baselinePath := fs.String("baseline", "", "baseline file of reviewed findings to grandfather")
	writeBaseline := fs.Bool("write-baseline", false, "write current findings to the -baseline file and exit 0")
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default: the whole suite)")
	timing := fs.Bool("timing", false, "print per-analyzer wall-clock timing to stderr")
	timingJSON := fs.String("timing-json", "", "write per-analyzer timing and finding counts as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *runNames != "" {
		var err error
		analyzers, err = lint.SelectAnalyzers(analyzers, *runNames)
		if err != nil {
			fmt.Fprintln(stderr, "sjvet:", err)
			return 2
		}
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "sjvet: -write-baseline requires -baseline <file>")
		return 2
	}

	dir := *chdir
	if dir == "" {
		dir = "."
	}
	root, err := lint.FindModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	mod, err := lint.LoadModule(root, lint.LoadOptions{IncludeTests: *withTests})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	selected, err := selectPackages(mod, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	// Analyze only the selected packages, but give the interprocedural layer
	// the whole module so helper summaries are complete.
	findings, timings := lint.RunPackagesTimed(mod, analyzers, selected)
	relativize(findings, root)
	if *timing {
		for _, t := range timings {
			fmt.Fprintf(stderr, "sjvet: timing %-16s %8.1fms\n", t.Name, float64(t.Elapsed.Microseconds())/1000)
		}
	}
	if *timingJSON != "" {
		// Counts are pre-baseline: the artifact tracks analyzer activity and
		// cost over time, not the CI pass/fail verdict.
		if err := writeTimingJSON(*timingJSON, timings, findings); err != nil {
			fmt.Fprintln(stderr, "sjvet:", err)
			return 2
		}
	}

	if *writeBaseline {
		if err := os.WriteFile(*baselinePath, lint.FormatBaseline(findings), 0o644); err != nil {
			fmt.Fprintln(stderr, "sjvet:", err)
			return 2
		}
		fmt.Fprintf(stderr, "sjvet: wrote %d baseline entr%s to %s\n",
			len(findings), plural(len(findings), "y", "ies"), *baselinePath)
		return 0
	}

	var stale []lint.BaselineEntry
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "sjvet:", err)
			return 2
		}
		entries, err := lint.ParseBaseline(data)
		if err != nil {
			fmt.Fprintln(stderr, "sjvet:", err)
			return 2
		}
		if *runNames != "" {
			// With -run, baseline entries for analyzers outside the subset
			// are out of scope, not stale.
			active := map[string]bool{}
			for _, a := range analyzers {
				active[a.Name] = true
			}
			kept := entries[:0]
			for _, e := range entries {
				if active[e.Analyzer] {
					kept = append(kept, e)
				}
			}
			entries = kept
		}
		if len(fs.Args()) > 0 {
			// Likewise for a package-scoped run: entries for files the run
			// never analyzed are out of scope, not stale.
			files := selectedFiles(mod, selected, root)
			kept := entries[:0]
			for _, e := range entries {
				if files[e.File] {
					kept = append(kept, e)
				}
			}
			entries = kept
		}
		findings, _, stale = lint.ApplyBaseline(findings, entries)
	}

	if *sarifPath != "" {
		data, err := lint.EncodeSARIF(findings, analyzers)
		if err != nil {
			fmt.Fprintln(stderr, "sjvet:", err)
			return 2
		}
		if err := os.WriteFile(*sarifPath, data, 0o644); err != nil {
			fmt.Fprintln(stderr, "sjvet:", err)
			return 2
		}
	}

	if *jsonOut {
		data, err := lint.EncodeJSON(findings)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintln(stdout, string(data))
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
			for _, s := range f.Steps {
				fmt.Fprintf(stdout, "    step %s:%d: %s\n", s.Pos.Filename, s.Pos.Line, s.Text)
			}
		}
	}
	fail := false
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "sjvet: %d finding(s)\n", len(findings))
		}
		fail = true
	}
	if len(stale) > 0 {
		for _, e := range stale {
			fmt.Fprintf(stderr, "sjvet: stale baseline entry (finding no longer produced): %s\t%s\t%s\n", e.File, e.Analyzer, e.Message)
		}
		fmt.Fprintf(stderr, "sjvet: %d stale baseline entr%s — remove them in the same change that fixed the source, or regenerate with -write-baseline\n",
			len(stale), plural(len(stale), "y", "ies"))
		fail = true
	}
	if fail {
		return 1
	}
	return 0
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// relativize rewrites finding (and path-step) filenames relative to the
// module root for stable, readable output.
func relativize(fs []lint.Finding, root string) {
	rel := func(name string) string {
		if r, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
		return name
	}
	for i := range fs {
		fs[i].Pos.Filename = rel(fs[i].Pos.Filename)
		for j := range fs[i].Steps {
			fs[i].Steps[j].Pos.Filename = rel(fs[i].Steps[j].Pos.Filename)
		}
	}
}

// timingRow is one entry of the -timing-json artifact.
type timingRow struct {
	Name     string  `json:"name"`
	Ms       float64 `json:"ms"`
	Findings int     `json:"findings"`
}

// writeTimingJSON records per-analyzer wall-clock cost and raw finding
// counts — the trend artifact CI archives run over run.
func writeTimingJSON(path string, timings []lint.AnalyzerTiming, findings []lint.Finding) error {
	counts := map[string]int{}
	for _, f := range findings {
		counts[f.Analyzer]++
	}
	rows := make([]timingRow, 0, len(timings))
	for _, t := range timings {
		rows = append(rows, timingRow{
			Name:     t.Name,
			Ms:       float64(t.Elapsed.Microseconds()) / 1000,
			Findings: counts[t.Name],
		})
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// selectedFiles lists the module-root-relative filenames of the analyzed
// packages — the scope baseline entries are matched against.
func selectedFiles(mod *lint.Module, pkgs []*lint.Package, root string) map[string]bool {
	files := map[string]bool{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			name := mod.Fset.Position(file.Pos()).Filename
			if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = filepath.ToSlash(rel)
			}
			files[name] = true
		}
	}
	return files
}

// selectPackages filters the module's packages by the command-line patterns.
func selectPackages(mod *lint.Module, patterns []string) ([]*lint.Package, error) {
	if len(patterns) == 0 {
		return mod.Pkgs, nil
	}
	keep := map[string]bool{}
	for _, pat := range patterns {
		matched := false
		for _, pkg := range mod.Pkgs {
			if matchPattern(mod.Path, pat, pkg.Path) {
				keep[pkg.Path] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("sjvet: pattern %q matches no packages", pat)
		}
	}
	var out []*lint.Package
	for _, pkg := range mod.Pkgs {
		if keep[pkg.Path] {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// matchPattern reports whether a go-style package pattern selects the import
// path. "./x" anchors at the module root; a trailing "/..." matches the
// subtree; "./..." and "all" match everything.
func matchPattern(modPath, pat, importPath string) bool {
	if pat == "all" || pat == "./..." || pat == "..." {
		return true
	}
	pat = strings.TrimSuffix(pat, "/")
	if strings.HasPrefix(pat, "./") {
		pat = path.Join(modPath, strings.TrimPrefix(pat, "./"))
	} else if pat == "." {
		pat = modPath
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return importPath == sub || strings.HasPrefix(importPath, sub+"/")
	}
	return importPath == pat
}
