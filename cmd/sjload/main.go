// Command sjload drives load against a running sjserved and reports
// throughput, latency quantiles, and plan-cache effectiveness. It spawns
// N concurrent clients over a shared start barrier, each issuing a mixed
// workload (plan-only searches and full executions of the same query),
// and classifies every request:
//
//	completed  2xx answered in full (stream trailer received)
//	rejected   fully answered 429/503 — deliberate load shedding
//	failed     fully answered other non-2xx (bad query, no path, timeout)
//	refused    transport error before any response (server gone)
//	dropped    stream began (HTTP 200) but broke before the trailer —
//	           an accepted query the server abandoned
//
// "dropped" is the graceful-shutdown acid test: a draining sjserved must
// finish every stream it started, so sjload exits 1 if dropped > 0.
// With -expect-rejections it also exits 1 unless at least one request was
// shed (used by CI to prove admission control engages under overload).
//
//	sjload -server URL [-clients N] [-requests N] [-domains a,b]
//	       [-values x,y[:units]] [-window SEC] [-limit N]
//	       [-timeout-ms N] [-plan-every N] [-expect-rejections]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"scrubjay/internal/engine"
	"scrubjay/internal/server"
)

type outcome int

const (
	completed outcome = iota
	rejected
	failed
	refused
	dropped
	outcomeCount
)

var outcomeNames = [outcomeCount]string{"completed", "rejected", "failed", "refused", "dropped"}

type result struct {
	outcome outcome
	latency time.Duration
	// planSearch distinguishes /v1/plan results for the cold/warm report.
	planSearch   bool
	cacheHit     bool
	searchMicros int64
	err          error
}

func main() {
	serverURL := flag.String("server", "", "sjserved base URL (required)")
	clients := flag.Int("clients", 8, "concurrent clients")
	requests := flag.Int("requests", 10, "requests per client")
	domains := flag.String("domains", "job,rack", "comma-separated query domains")
	values := flag.String("values", "application", "comma-separated query values, each optionally DIM:UNITS")
	window := flag.Float64("window", 0, "interpolation-join window override")
	limit := flag.Int("limit", 0, "cap streamed rows per query")
	timeoutMS := flag.Int64("timeout-ms", 30_000, "per-request deadline sent to the server")
	planEvery := flag.Int("plan-every", 4, "every Nth request is plan-only (0 = never)")
	expectRejections := flag.Bool("expect-rejections", false, "exit 1 unless the server shed load at least once")
	flag.Parse()
	if *serverURL == "" {
		fmt.Fprintln(os.Stderr, "sjload: -server is required")
		flag.Usage()
		os.Exit(2)
	}

	q := engine.Query{}
	for _, d := range strings.Split(*domains, ",") {
		if d = strings.TrimSpace(d); d != "" {
			q.Domains = append(q.Domains, d)
		}
	}
	for _, v := range strings.Split(*values, ",") {
		if v = strings.TrimSpace(v); v != "" {
			qv := engine.QueryValue{Dimension: v}
			if i := strings.Index(v, ":"); i > 0 {
				qv = engine.QueryValue{Dimension: v[:i], Units: v[i+1:]}
			}
			q.Values = append(q.Values, qv)
		}
	}

	results := drive(*serverURL, *clients, *requests, q, *window, *limit, *timeoutMS, *planEvery)
	counts := report(results, *clients)

	if counts[dropped] > 0 {
		fmt.Printf("FAIL: %d in-flight queries dropped\n", counts[dropped])
		os.Exit(1)
	}
	if *expectRejections && counts[rejected] == 0 {
		fmt.Println("FAIL: expected the server to shed load, but nothing was rejected")
		os.Exit(1)
	}
	if !*expectRejections && counts[completed] == 0 {
		fmt.Println("FAIL: no request completed")
		os.Exit(1)
	}
}

// drive fans out the workload: all clients block on one barrier, then each
// issues its requests back to back.
func drive(serverURL string, clients, requests int, q engine.Query, window float64, limit int, timeoutMS int64, planEvery int) []result {
	results := make([]result, clients*requests)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := &server.Client{BaseURL: serverURL}
			<-start
			for i := 0; i < requests; i++ {
				planOnly := planEvery > 0 && i%planEvery == 0
				req := server.QueryRequest{
					Query:         q,
					WindowSeconds: window,
					Limit:         limit,
					TimeoutMillis: timeoutMS,
				}
				t0 := time.Now()
				var r result
				if planOnly {
					pr, err := cl.Plan(req)
					r = classify(err)
					r.planSearch = true
					r.cacheHit, r.searchMicros = pr.CacheHit, pr.SearchMicros
				} else {
					header, _, _, err := cl.Query(req)
					r = classify(err)
					r.cacheHit, r.searchMicros = header.CacheHit, header.SearchMicros
				}
				r.latency = time.Since(t0)
				results[c*requests+i] = r
			}
		}(c)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)
	fmt.Printf("%d clients x %d requests in %v\n", clients, requests, elapsed.Round(time.Millisecond))
	return results
}

func classify(err error) result {
	if err == nil {
		return result{outcome: completed}
	}
	var broken *server.StreamBrokenError
	if errors.As(err, &broken) {
		return result{outcome: dropped, err: err}
	}
	var he *server.HTTPError
	if errors.As(err, &he) {
		if he.Rejected() {
			return result{outcome: rejected, err: err}
		}
		return result{outcome: failed, err: err}
	}
	return result{outcome: refused, err: err}
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted)-1) + 0.5)
	return sorted[i]
}

// report prints outcome counts, latency quantiles over completed requests,
// and the cold-vs-warm plan-search comparison, returning the counts.
func report(results []result, clients int) [outcomeCount]int {
	var counts [outcomeCount]int
	var lats []time.Duration
	var coldSearch, warmSearch []int64
	var coldLat, warmLat []time.Duration
	firstErr := map[outcome]error{}
	var wall time.Duration
	for _, r := range results {
		counts[r.outcome]++
		if r.err != nil && firstErr[r.outcome] == nil {
			firstErr[r.outcome] = r.err
		}
		if r.outcome != completed {
			continue
		}
		lats = append(lats, r.latency)
		wall += r.latency
		if r.planSearch {
			if r.cacheHit {
				warmSearch = append(warmSearch, r.searchMicros)
				warmLat = append(warmLat, r.latency)
			} else {
				coldSearch = append(coldSearch, r.searchMicros)
				coldLat = append(coldLat, r.latency)
			}
		}
	}
	for o := completed; o < outcomeCount; o++ {
		fmt.Printf("%-10s %d\n", outcomeNames[o]+":", counts[int(o)])
		if err := firstErr[o]; err != nil {
			fmt.Printf("           first: %v\n", err)
		}
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		perClient := wall / time.Duration(clients)
		if perClient > 0 {
			fmt.Printf("throughput: %.1f qps\n", float64(len(lats))/perClient.Seconds())
		}
		fmt.Printf("latency: p50=%v p90=%v p99=%v max=%v\n",
			percentile(lats, 0.50).Round(time.Microsecond),
			percentile(lats, 0.90).Round(time.Microsecond),
			percentile(lats, 0.99).Round(time.Microsecond),
			lats[len(lats)-1].Round(time.Microsecond))
	}
	if len(coldLat) > 0 && len(warmLat) > 0 {
		fmt.Printf("plan search: cold n=%d avg_search=%v avg_latency=%v | warm n=%d avg_search=%v avg_latency=%v\n",
			len(coldLat), avgMicros(coldSearch), avgDur(coldLat),
			len(warmLat), avgMicros(warmSearch), avgDur(warmLat))
	}
	return counts
}

func avgMicros(xs []int64) time.Duration {
	var sum int64
	for _, x := range xs {
		sum += x
	}
	return (time.Duration(sum) * time.Microsecond) / time.Duration(len(xs))
}

func avgDur(xs []time.Duration) time.Duration {
	var sum time.Duration
	for _, x := range xs {
		sum += x
	}
	return (sum / time.Duration(len(xs))).Round(time.Microsecond)
}
