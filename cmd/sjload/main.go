// Command sjload drives load against a running sjserved and reports
// throughput, latency quantiles, and plan-cache effectiveness. It spawns
// N concurrent clients over a shared start barrier, each issuing a mixed
// workload (plan-only searches and full executions of the same query),
// and classifies every request:
//
//	completed  2xx answered in full (stream trailer received)
//	rejected   fully answered 429/503 — deliberate load shedding
//	failed     fully answered other non-2xx (bad query, no path, timeout)
//	refused    transport error before any response (server gone)
//	dropped    stream began (HTTP 200) but broke before the trailer —
//	           an accepted query the server abandoned
//
// "dropped" is the graceful-shutdown acid test: a draining sjserved must
// finish every stream it started, so sjload exits 1 if dropped > 0.
// With -expect-rejections it also exits 1 unless at least one request was
// shed (used by CI to prove admission control engages under overload).
//
// Latency quantiles come from the same bounded histogram the server's
// /metrics endpoint uses (internal/obs), observed concurrently by every
// client — so the p50/p90/p99 sjload prints are directly comparable to
// the latency_p* keys the server reports. With -out the run lands as a
// machine-readable JSON summary (BENCH_serve.json in CI).
//
//	sjload -server URL [-clients N] [-requests N] [-domains a,b]
//	       [-values x,y[:units]] [-window SEC] [-limit N]
//	       [-timeout-ms N] [-plan-every N] [-expect-rejections]
//	       [-out BENCH_serve.json]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"scrubjay/internal/engine"
	"scrubjay/internal/obs"
	"scrubjay/internal/server"
)

type outcome int

const (
	completed outcome = iota
	rejected
	failed
	refused
	dropped
	outcomeCount
)

var outcomeNames = [outcomeCount]string{"completed", "rejected", "failed", "refused", "dropped"}

type result struct {
	outcome outcome
	latency time.Duration
	// planSearch distinguishes /v1/plan results for the cold/warm report.
	planSearch   bool
	cacheHit     bool
	searchMicros int64
	err          error
}

// benchReport is the machine-readable summary written by -out.
type benchReport struct {
	Clients         int              `json:"clients"`
	Requests        int              `json:"requests_per_client"`
	WallMicros      int64            `json:"wall_micros"`
	Outcomes        map[string]int   `json:"outcomes"`
	ThroughputQPS   float64          `json:"throughput_qps"`
	Latency         map[string]int64 `json:"latency_micros,omitempty"`
	ColdSearches    int              `json:"cold_searches"`
	WarmSearches    int              `json:"warm_searches"`
	ColdSearchAvgUS int64            `json:"cold_search_avg_micros,omitempty"`
	WarmSearchAvgUS int64            `json:"warm_search_avg_micros,omitempty"`
}

func main() {
	serverURL := flag.String("server", "", "sjserved base URL (required)")
	clients := flag.Int("clients", 8, "concurrent clients")
	requests := flag.Int("requests", 10, "requests per client")
	domains := flag.String("domains", "job,rack", "comma-separated query domains")
	values := flag.String("values", "application", "comma-separated query values, each optionally DIM:UNITS")
	window := flag.Float64("window", 0, "interpolation-join window override")
	limit := flag.Int("limit", 0, "cap streamed rows per query")
	timeoutMS := flag.Int64("timeout-ms", 30_000, "per-request deadline sent to the server")
	planEvery := flag.Int("plan-every", 4, "every Nth request is plan-only (0 = never)")
	expectRejections := flag.Bool("expect-rejections", false, "exit 1 unless the server shed load at least once")
	out := flag.String("out", "", "write the machine-readable run summary to this JSON file")
	flag.Parse()
	if *serverURL == "" {
		fmt.Fprintln(os.Stderr, "sjload: -server is required")
		flag.Usage()
		os.Exit(2)
	}

	q := engine.Query{}
	for _, d := range strings.Split(*domains, ",") {
		if d = strings.TrimSpace(d); d != "" {
			q.Domains = append(q.Domains, d)
		}
	}
	for _, v := range strings.Split(*values, ",") {
		if v = strings.TrimSpace(v); v != "" {
			qv := engine.QueryValue{Dimension: v}
			if i := strings.Index(v, ":"); i > 0 {
				qv = engine.QueryValue{Dimension: v[:i], Units: v[i+1:]}
			}
			q.Values = append(q.Values, qv)
		}
	}

	// One histogram shared by every client goroutine — the same instrument
	// the server renders on /metrics, so the quantiles line up.
	lat := obs.NewRegistry().Histogram("latency", "micros")
	results, wall := drive(*serverURL, *clients, *requests, q, *window, *limit, *timeoutMS, *planEvery, lat)
	rep := report(results, *clients, *requests, wall, lat)

	if *out != "" {
		if err := writeReport(*out, rep); err != nil {
			fmt.Fprintf(os.Stderr, "sjload: writing %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *out)
	}

	if n := rep.Outcomes[outcomeNames[dropped]]; n > 0 {
		fmt.Printf("FAIL: %d in-flight queries dropped\n", n)
		os.Exit(1)
	}
	if *expectRejections && rep.Outcomes[outcomeNames[rejected]] == 0 {
		fmt.Println("FAIL: expected the server to shed load, but nothing was rejected")
		os.Exit(1)
	}
	if !*expectRejections && rep.Outcomes[outcomeNames[completed]] == 0 {
		fmt.Println("FAIL: no request completed")
		os.Exit(1)
	}
}

// drive fans out the workload: all clients block on one barrier, then each
// issues its requests back to back, observing completed latencies into the
// shared histogram as they land.
func drive(serverURL string, clients, requests int, q engine.Query, window float64, limit int, timeoutMS int64, planEvery int, lat *obs.Histogram) ([]result, time.Duration) {
	results := make([]result, clients*requests)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := &server.Client{BaseURL: serverURL}
			<-start
			for i := 0; i < requests; i++ {
				planOnly := planEvery > 0 && i%planEvery == 0
				req := server.QueryRequest{
					Query:         q,
					WindowSeconds: window,
					Limit:         limit,
					TimeoutMillis: timeoutMS,
				}
				t0 := time.Now()
				var r result
				if planOnly {
					pr, err := cl.Plan(req)
					r = classify(err)
					r.planSearch = true
					r.cacheHit, r.searchMicros = pr.CacheHit, pr.SearchMicros
				} else {
					header, _, _, err := cl.Query(req)
					r = classify(err)
					r.cacheHit, r.searchMicros = header.CacheHit, header.SearchMicros
				}
				r.latency = time.Since(t0)
				if r.outcome == completed {
					lat.ObserveDuration(r.latency)
				}
				results[c*requests+i] = r
			}
		}(c)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)
	fmt.Printf("%d clients x %d requests in %v\n", clients, requests, elapsed.Round(time.Millisecond))
	return results, elapsed
}

func classify(err error) result {
	if err == nil {
		return result{outcome: completed}
	}
	var broken *server.StreamBrokenError
	if errors.As(err, &broken) {
		return result{outcome: dropped, err: err}
	}
	var he *server.HTTPError
	if errors.As(err, &he) {
		if he.Rejected() {
			return result{outcome: rejected, err: err}
		}
		return result{outcome: failed, err: err}
	}
	return result{outcome: refused, err: err}
}

// report prints outcome counts, latency quantiles from the shared obs
// histogram, and the cold-vs-warm plan-search comparison, returning the
// machine-readable summary.
func report(results []result, clients, requests int, elapsed time.Duration, lat *obs.Histogram) benchReport {
	var counts [outcomeCount]int
	var coldSearch, warmSearch []int64
	var coldLat, warmLat []time.Duration
	firstErr := map[outcome]error{}
	var wall time.Duration
	for _, r := range results {
		counts[r.outcome]++
		if r.err != nil && firstErr[r.outcome] == nil {
			firstErr[r.outcome] = r.err
		}
		if r.outcome != completed {
			continue
		}
		wall += r.latency
		if r.planSearch {
			if r.cacheHit {
				warmSearch = append(warmSearch, r.searchMicros)
				warmLat = append(warmLat, r.latency)
			} else {
				coldSearch = append(coldSearch, r.searchMicros)
				coldLat = append(coldLat, r.latency)
			}
		}
	}
	rep := benchReport{
		Clients:      clients,
		Requests:     requests,
		WallMicros:   elapsed.Microseconds(),
		Outcomes:     map[string]int{},
		ColdSearches: len(coldLat),
		WarmSearches: len(warmLat),
	}
	for o := completed; o < outcomeCount; o++ {
		rep.Outcomes[outcomeNames[o]] = counts[int(o)]
		fmt.Printf("%-10s %d\n", outcomeNames[o]+":", counts[int(o)])
		if err := firstErr[o]; err != nil {
			fmt.Printf("           first: %v\n", err)
		}
	}
	if n := lat.Count(); n > 0 {
		perClient := wall / time.Duration(clients)
		if perClient > 0 {
			rep.ThroughputQPS = float64(n) / perClient.Seconds()
			fmt.Printf("throughput: %.1f qps\n", rep.ThroughputQPS)
		}
		p50, p90, p99, max := lat.Quantile(0.50), lat.Quantile(0.90), lat.Quantile(0.99), lat.Max()
		rep.Latency = map[string]int64{"p50": p50, "p90": p90, "p99": p99, "max": max, "count": n}
		fmt.Printf("latency: p50=%v p90=%v p99=%v max=%v\n",
			time.Duration(p50)*time.Microsecond,
			time.Duration(p90)*time.Microsecond,
			time.Duration(p99)*time.Microsecond,
			(time.Duration(max) * time.Microsecond).Round(time.Microsecond))
	}
	if len(coldLat) > 0 && len(warmLat) > 0 {
		rep.ColdSearchAvgUS = sumInt64(coldSearch) / int64(len(coldSearch))
		rep.WarmSearchAvgUS = sumInt64(warmSearch) / int64(len(warmSearch))
		fmt.Printf("plan search: cold n=%d avg_search=%v avg_latency=%v | warm n=%d avg_search=%v avg_latency=%v\n",
			len(coldLat), avgMicros(coldSearch), avgDur(coldLat),
			len(warmLat), avgMicros(warmSearch), avgDur(warmLat))
	}
	return rep
}

// writeReport lands the summary as indented JSON via temp + rename so a
// concurrent reader never sees a partial file.
func writeReport(path string, rep benchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func sumInt64(xs []int64) int64 {
	var sum int64
	for _, x := range xs {
		sum += x
	}
	return sum
}

func avgMicros(xs []int64) time.Duration {
	return (time.Duration(sumInt64(xs)) * time.Microsecond) / time.Duration(len(xs))
}

func avgDur(xs []time.Duration) time.Duration {
	var sum time.Duration
	for _, x := range xs {
		sum += x
	}
	return (sum / time.Duration(len(xs))).Round(time.Microsecond)
}
