// Command sjworker is a ScrubJay shard worker: it serves the TCP shuffle
// exchange (internal/shuffle) that distributed queries move column batches
// through. A driver (sjserved or the scrubjay CLI with -shuffle-workers)
// registers workers by address, pushes map outputs to them, and fetches
// merged destination partitions back; the worker owns the partition ranges
// the driver's cluster scheduler assigns it.
//
// Usage:
//
//	sjworker -addr 127.0.0.1:7401
//	sjworker -addr 127.0.0.1:0 -addr-file /tmp/w1.addr   # tests: bind any port
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"scrubjay/internal/shuffle"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7401", "address to serve the shuffle exchange on (use :0 for an ephemeral port)")
		addrFile = flag.String("addr-file", "", "optional file to write the bound address to (for scripts that use -addr :0)")
		id       = flag.String("id", "", "worker identity reported to drivers (default: the bound address)")
	)
	flag.Parse()
	if err := run(*addr, *addrFile, *id); err != nil {
		fmt.Fprintln(os.Stderr, "sjworker:", err)
		os.Exit(1)
	}
}

func run(addr, addrFile, id string) error {
	srv, err := shuffle.Serve(addr, id)
	if err != nil {
		return err
	}
	defer srv.Close()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(srv.Addr()), 0o644); err != nil {
			return fmt.Errorf("writing -addr-file: %w", err)
		}
	}
	fmt.Printf("sjworker %s listening on %s\n", srv.ID(), srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("sjworker %s: %v, shutting down\n", srv.ID(), s)
	return srv.Close()
}
