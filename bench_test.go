// Package scrubjay_test holds the testing.B benchmarks that mirror the
// paper's evaluation (one benchmark family per figure) plus the ablation
// benches called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Figure 3's absolute scale (2M-40M rows on a 10-node cluster) is reachable
// by raising the row counts; defaults keep a full run under a few minutes
// on a laptop. cmd/sjbench regenerates the actual figure series.
package scrubjay_test

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"scrubjay/internal/bench"
	"scrubjay/internal/cache"
	"scrubjay/internal/dataset"
	"scrubjay/internal/derive"
	"scrubjay/internal/engine"
	"scrubjay/internal/ingest"
	"scrubjay/internal/kvstore"
	"scrubjay/internal/pipeline"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

func joinWorkload(rows int) bench.JoinWorkload {
	w := bench.DefaultJoinWorkload()
	w.Rows = rows
	w.Partitions = 16
	return w
}

// BenchmarkNaturalJoinRows is Figure 3 (top-left): natural join cost as
// rows grow. The reported sim_s/op metric is the simulated 10-node
// makespan.
func BenchmarkNaturalJoinRows(b *testing.B) {
	for _, rows := range []int{10_000, 50_000, 100_000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				res, err := bench.RunNaturalJoin(joinWorkload(rows))
				if err != nil {
					b.Fatal(err)
				}
				sim = res.Simulated(10).Seconds()
			}
			b.ReportMetric(sim, "sim_s/op")
		})
	}
}

// BenchmarkNaturalJoinScaling is Figure 3 (top-right): one measured run
// replayed on simulated clusters of 1..10 nodes.
func BenchmarkNaturalJoinScaling(b *testing.B) {
	res, err := bench.RunNaturalJoin(joinWorkload(100_000))
	if err != nil {
		b.Fatal(err)
	}
	for _, nodes := range []int{1, 2, 5, 10} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				sim = res.Simulated(nodes).Seconds()
			}
			b.ReportMetric(sim, "sim_s/op")
		})
	}
}

// BenchmarkInterpJoinRows is Figure 3 (bottom-left).
func BenchmarkInterpJoinRows(b *testing.B) {
	for _, rows := range []int{10_000, 50_000, 100_000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				res, err := bench.RunInterpJoin(joinWorkload(rows))
				if err != nil {
					b.Fatal(err)
				}
				sim = res.Simulated(10).Seconds()
			}
			b.ReportMetric(sim, "sim_s/op")
		})
	}
}

// BenchmarkInterpJoinScaling is Figure 3 (bottom-right).
func BenchmarkInterpJoinScaling(b *testing.B) {
	res, err := bench.RunInterpJoin(joinWorkload(50_000))
	if err != nil {
		b.Fatal(err)
	}
	for _, nodes := range []int{1, 2, 5, 10} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				sim = res.Simulated(nodes).Seconds()
			}
			b.ReportMetric(sim, "sim_s/op")
		})
	}
}

// BenchmarkInterpJoinVsNaive is the §5.3 ablation: the paper's dual-binning
// algorithm against the naive all-pairs baseline. The naive baseline is
// quadratic in samples-per-key; it overtakes dual-binning below ~40k rows
// of this workload and loses by growing multiples beyond it (4x at 120k).
func BenchmarkInterpJoinVsNaive(b *testing.B) {
	w := joinWorkload(120_000)
	b.Run("dual-binning", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.RunInterpJoin(w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive-pairwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.RunNaiveInterpJoin(w); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineQuery measures derivation-engine solve latency for the two
// case-study queries (§5.2 "interactive rates") and Figure 5/7 plans.
func BenchmarkEngineQuery(b *testing.B) {
	b.Run("fig5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.RunFig5Plan(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fig7", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.RunFig7Plan(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineMemoization is the §5.2 ablation: repeated solves with and
// without the pairwise memo table.
func BenchmarkEngineMemoization(b *testing.B) {
	b.Run("memo=on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.RunMemoAblation(8, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// fig4Config is a small case-study configuration for macro benchmarks.
func fig4Config() bench.CaseStudyConfig {
	cfg := bench.DefaultCaseStudyConfig()
	cfg.Racks = 6
	cfg.NodesPerRack = 12
	cfg.AMGRack = 3
	cfg.DAT1DurationSec = 3600
	cfg.DAT2RunSec = 120
	cfg.DAT2GapSec = 30
	cfg.Partitions = 8
	return cfg
}

// BenchmarkFig4CaseStudy executes the complete §7.2 pipeline: simulation,
// query solving, derivation execution, analysis.
func BenchmarkFig4CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig4(fig4Config()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6CaseStudy executes the complete §7.3 pipeline.
func BenchmarkFig6CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig6(fig4Config()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineCache is the §5.4 ablation: repeated execution of one
// derivation sequence with the result cache off vs warm. Caching pays only
// when the derivation outweighs deserializing its result — exactly why the
// paper makes it opt-in — so this bench uses a DAT large enough for the
// interpolation join to dominate.
func BenchmarkPipelineCache(b *testing.B) {
	ctx := rdd.NewContext(0)
	dict := semantics.DefaultDictionary()
	cfg := fig4Config()
	cfg.Racks = 12
	cfg.NodesPerRack = 32
	cfg.AMGRack = 7
	cfg.DAT1DurationSec = 7200
	cat, schemas, _ := bench.DAT1Catalog(ctx, cfg)
	e := engine.New(dict, schemas, engine.DefaultOptions())
	plan, err := e.Solve(context.Background(), bench.Fig5Query())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cache=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pipeline.Execute(context.Background(), ctx, plan, cat, dict, pipeline.ExecOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cache=warm", func(b *testing.B) {
		c, err := cache.Open(b.TempDir(), 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pipeline.Execute(context.Background(), ctx, plan, cat, dict, pipeline.ExecOptions{Cache: c}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pipeline.Execute(context.Background(), ctx, plan, cat, dict, pipeline.ExecOptions{Cache: c}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkJoinStrategies compares the hash shuffle join against the
// broadcast join on a small dimension table (the node-layout shape).
func BenchmarkJoinStrategies(b *testing.B) {
	ctx := rdd.NewContext(0)
	const rows = 100_000
	const nodes = 512
	big := rdd.Generate(ctx, rows, 16, func(i int) value.Row {
		return value.Row{
			"node": value.Str(fmt.Sprintf("n%04d", i%nodes)),
			"v":    value.Float(float64(i)),
		}
	})
	small := make([]value.Row, nodes)
	for i := range small {
		small[i] = value.Row{
			"node": value.Str(fmt.Sprintf("n%04d", i)),
			"rack": value.Str(fmt.Sprintf("r%02d", i/32)),
		}
	}
	key := func(r value.Row) string { return r.Get("node").StrVal() }
	b.Run("hash-shuffle", func(b *testing.B) {
		smallRDD := rdd.Parallelize(ctx, small, 4)
		for i := 0; i < b.N; i++ {
			n := rdd.JoinHash(big, smallRDD, key, key).Count()
			if n != rows {
				b.Fatalf("join size %d", n)
			}
		}
	})
	b.Run("broadcast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := rdd.BroadcastJoin(big, small, key, key).Count()
			if n != rows {
				b.Fatalf("join size %d", n)
			}
		}
	})
}

// BenchmarkDeriveRate measures the counter-to-rate transformation on a
// PAPI-shaped dataset.
func BenchmarkDeriveRate(b *testing.B) {
	ctx := rdd.NewContext(0)
	dict := semantics.DefaultDictionary()
	schema := semantics.NewSchema(
		"time", semantics.TimeDomain(),
		"cpu_id", semantics.IDDomain("cpu"),
		"instructions", semantics.ValueEntry("instructions", "count"),
	)
	const cpus, samples = 64, 512
	rows := rdd.Generate(ctx, cpus*samples, 16, func(i int) value.Row {
		cpu := i % cpus
		s := int64(i / cpus)
		return value.Row{
			"time":         value.TimeNanos(s * 1e9),
			"cpu_id":       value.Str(fmt.Sprintf("c%03d", cpu)),
			"instructions": value.Int(s * 1000),
		}
	})
	ds := dataset.New("papi", rows, schema)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := (&derive.DeriveRate{}).Apply(ds, dict)
		if err != nil {
			b.Fatal(err)
		}
		if out.Count() == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkRowEncoding compares the two row serializations: the lossless
// tagged-JSON interchange form and the binary form the derivation-result
// cache uses (DESIGN.md inventory #22).
func BenchmarkRowEncoding(b *testing.B) {
	row := value.NewRow(
		"time", value.TimeNanos(1490000000e9),
		"node", value.Str("cab17-42"),
		"cpu_id", value.Str("cpu07"),
		"aperf", value.Float(3.456789e12),
		"mperf", value.Float(3.2e12),
		"instructions", value.Float(7.1e12),
		"nodelist", value.StrList("cab17-42", "cab17-43"),
		"timespan", value.Span(0, 3600e9),
	)
	b.Run("binary-encode", func(b *testing.B) {
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = row.AppendBinary(buf[:0])
		}
	})
	b.Run("binary-decode", func(b *testing.B) {
		data := row.AppendBinary(nil)
		for i := 0; i < b.N; i++ {
			if _, _, err := value.DecodeRow(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("json-encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(row); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("json-decode", func(b *testing.B) {
		data, err := json.Marshal(row)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			var r value.Row
			if err := json.Unmarshal(data, &r); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIngest measures continuous-collection throughput into the
// embedded store (§2: the paper's facility ingests tens of GB/day and
// anticipates TB/day).
func BenchmarkIngest(b *testing.B) {
	store, err := kvstore.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	schema := semantics.NewSchema(
		"time", semantics.TimeDomain(),
		"node", semantics.IDDomain("compute_node"),
		"load", semantics.ValueEntry("fraction", "fraction"),
	)
	ing, err := ingest.Open(store, "bench", schema, ingest.Config{BatchSize: 512})
	if err != nil {
		b.Fatal(err)
	}
	defer ing.Close()
	row := value.NewRow(
		"time", value.TimeNanos(0),
		"node", value.Str("cab00-00"),
		"load", value.Float(0.5),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ing.Ingest(row); err != nil {
			b.Fatal(err)
		}
	}
}
